// Tail latency under a stalled thread (ISSUE 7, EXPERIMENTS.md A7): the
// experiment the wait-free helping queue exists for.
//
// One thread -- the fault layer's sticky victim -- sleeps a fixed duration
// every time it reaches its queue's critical CAS window (the paper's
// "process delayed", scaled from a cache miss to a page fault to a
// descheduled quantum).  Every item carries its submission timestamp, and
// the consumer records the SOJOURN (submit -> dequeue) into per-thread
// histograms.  Sojourn, not call latency, is where progress guarantees
// become measurable:
//
//   msq    the victim stalls between reading Tail and its E9 link CAS; its
//          item does not exist in shared memory yet, so NOBODY can help --
//          that item's sojourn grows by the full stall, and p99.9 tracks
//          the stall duration.  Sleeping on EVERY E9 hit is unbounded
//          starvation, not a latency experiment: each sleep guarantees a
//          running peer moved Tail, so the victim's CAS loses, it re-reads,
//          sleeps again, and never completes an enqueue while any peer
//          keeps operating.  (Before src/mem/freelist.hpp made per-node
//          link tags monotone, tag reuse let those stale CASes "succeed"
//          by ABA -- corruption masquerading as progress.)  The shipped
//          configuration stalls alternate hits (stall_at every=2) so each
//          victim operation absorbs ~one stall and terminates.
//   segq   same shape at the pre-reservation window ("segq.faa_enq").
//          NOT at "segq.fill": a sticky stall between the ticket FAA and
//          the fill CAS is a kill-retry storm -- every sleep ends with the
//          reserved slot already killed by an impatient dequeuer, the
//          enqueuer re-tickets, sleeps, is killed again, forever.  The
//          system stays lock-free (the killers progress) but the victim's
//          enqueue literally never completes; the run cannot terminate.
//          That unbounded single-thread starvation is itself a headline
//          result (see EXPERIMENTS.md A7), it just cannot be a bench
//          configuration.
//   shard4 the sharded front end isolates THROUGHPUT (other producers'
//          shards flow on), but the victim's own item still waits out the
//          stall inside its shard.
//   wfq    the victim ANNOUNCED its operation before entering the link
//          window, so any other thread completes it while the victim
//          sleeps: p99.9 stays near the unstalled baseline once there is
//          at least one helper (procs >= 2; a lone thread has no helpers
//          and its own sleep is unavoidable -- wait-freedom bounds steps,
//          not naps).
//
// Series are named "<algo>+stall<D>us", one full procs sweep each (schema
// msq-bench-v1; the per-point p99_ns/p999_ns fields are validated by
// tools/check_bench_json.py).  The injected sleep itself is accounted via
// fault::injected_stall_ns() and reported per point, so runs are
// comparable and the victim's stall budget is visible next to the damage
// it did (or failed to do).
//
// Flags: the common fig set (--pairs/--max-procs/--seed/--pin/--csv/
// --json) plus
//   --stalls D1,D2,...   stall durations in MICROSECONDS (default
//                        0,1000; 0 = unstalled baseline; up to 10000)
//   --only NAME          run a single variant (msq/segq/shard4/wfq);
//                        bisection and CI smoke runs
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/watchdog.hpp"
#include "fig_common.hpp"
#include "harness/calibrate.hpp"
#include "harness/table.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/report.hpp"
#include "queues/queues.hpp"
#include "scenario/stamped_loop.hpp"

namespace msq::bench {
namespace {

constexpr std::uint64_t kMaxStallUs = 10'000;

struct StallPoint {
  std::uint32_t procs = 0;
  double net_seconds_per_million = 0;
  std::uint64_t ops = 0;
  std::uint64_t empty_dequeues = 0;
  std::uint64_t enqueue_failures = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  std::uint64_t injected_ns = 0;  // victim sleep actually delivered
  obs::Snapshot counters;
};

struct StallSeries {
  std::string algo;
  std::vector<StallPoint> points;
};

/// One stalled point: arm the fault plan around the SHARED stamped pair
/// loop (scenario::run_stamped_pairs -- the run-until-all-quota shape,
/// stamping convention, and sojourn recording live there now, common to
/// fig_stall, fig_sharded, and the open-loop driver's closed-loop
/// companion).  This bench keeps only what is its own: the sticky-victim
/// stall choreography and the generous watchdog budget it requires.
template <typename Q>
scenario::StampedLoopResult run_stall(const char* site, std::uint32_t threads,
                                      std::uint64_t stall_us,
                                      const FigConfig& config) {
  Q queue(threads * 4 + 64);

  fault::FaultPlan plan;
  if (stall_us > 0) {
    // every=2 (alternate hits): sleeping on EVERY hit of a retry-loop site
    // is unbounded starvation for the lock-free queues -- each sleep lets a
    // peer invalidate the read the pending CAS depends on, so the victim
    // re-arrives at the site forever and its operation never completes
    // (see the header; FaultPlan::stall_at documents the general rule).
    // On alternate hits each victim operation absorbs ~one stall and
    // terminates, which is the measurable regime.
    plan.stall_at(site, std::chrono::microseconds(stall_us), /*skip=*/0,
                  /*every=*/2);
    plan.arm();
  }

  // Generous deadline: the victim sleeps on every window hit, so a stalled
  // run legitimately takes ~ (pairs/threads) * stall on top of the work.
  const auto deadline =
      std::chrono::milliseconds(60'000 + config.pairs * stall_us / 250);
  fault::Watchdog watchdog(deadline, "fig_stall run");

  scenario::StampedLoopConfig loop;
  loop.threads = threads;
  loop.pairs = config.pairs;
  loop.think_iters = harness::spin_iters_for_us(6.0);  // paper's ~6us
  loop.pin_threads = config.pin;
  scenario::StampedLoopResult result =
      scenario::run_stamped_pairs(queue, loop);
  plan.disarm();
  return result;
}

using RunFn = scenario::StampedLoopResult (*)(const char*, std::uint32_t,
                                              std::uint64_t,
                                              const FigConfig&);

struct Variant {
  std::string name;
  const char* site;  // the CAS window the sticky victim sleeps in
  RunFn run;
};

std::vector<Variant> make_variants() {
  return {
      {"msq", "ms.E9", &run_stall<queues::MsQueue<std::uint64_t>>},
      // segq.fill would livelock under a sticky stall (see header); the
      // pre-reservation window measures the same item-invisibility effect.
      {"segq", "segq.faa_enq", &run_stall<queues::SegmentQueue<std::uint64_t>>},
      {"shard4", "ms.E9",
       &run_stall<queues::ShardedQueue<queues::MsQueue<std::uint64_t>, 4>>},
      {"wfq", "wfq.link", &run_stall<queues::WfQueue<std::uint64_t>>},
  };
}

/// Parse "--only NAME" out of argv (and remove it) before the common
/// parser runs; empty = all variants.
bool extract_only(int& argc, char** argv, std::string& out) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--only") != 0) continue;
    if (i + 1 >= argc) {
      std::cerr << "--only needs a variant name (msq/segq/shard4/wfq)\n";
      return false;
    }
    out = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return true;
  }
  return true;
}

/// Parse "--stalls 0,1000" out of argv (and remove it) before the common
/// parser runs; durations are microseconds.
bool extract_stalls(int& argc, char** argv, std::vector<std::uint64_t>& out) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stalls") != 0) continue;
    if (i + 1 >= argc) {
      std::cerr << "--stalls needs a comma-separated us list (e.g. 0,1000)\n";
      return false;
    }
    const char* p = argv[i + 1];
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long us = std::strtoul(p, &end, 10);
      if (end == p || us > kMaxStallUs) {
        std::cerr << "--stalls: bad duration in '" << argv[i + 1]
                  << "' (0.." << kMaxStallUs << " us)\n";
        return false;
      }
      out.push_back(us);
      p = (*end == ',') ? end + 1 : end;
    }
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return true;
  }
  out = {0, 1000};
  return true;
}

void print_tables(const FigConfig& config,
                  const std::vector<StallSeries>& all_series) {
  const struct {
    const char* title;
    std::uint64_t StallPoint::* field;
  } kTables[] = {
      {"p99 item sojourn, ns (submit -> dequeue)", &StallPoint::p99_ns},
      {"p99.9 item sojourn, ns (the stall-victim's items live here)",
       &StallPoint::p999_ns},
      {"injected victim sleep, ns (stall budget actually delivered)",
       &StallPoint::injected_ns},
  };
  for (const auto& spec : kTables) {
    harness::SeriesTable table(std::string(spec.title) + "  [real]", "procs");
    std::vector<std::size_t> cols;
    cols.reserve(all_series.size());
    for (const StallSeries& s : all_series) {
      cols.push_back(table.add_series(s.algo));
    }
    const std::size_t rows =
        all_series.empty() ? 0 : all_series.front().points.size();
    for (std::size_t r = 0; r < rows; ++r) {
      table.add_row(all_series.front().points[r].procs);
      for (std::size_t a = 0; a < all_series.size(); ++a) {
        table.set(cols[a],
                  static_cast<double>(all_series[a].points[r].*(spec.field)));
      }
    }
    if (config.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }
}

void write_json(const FigConfig& config,
                const std::vector<StallSeries>& all_series) {
  std::ofstream out(config.json_path);
  if (!out) {
    std::cerr << "cannot open " << config.json_path << " for writing\n";
    return;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema");
  w.value("msq-bench-v1");
  w.key("title");
  w.value(config.title);
  w.key("pairs");
  w.value(config.pairs);
  w.key("max_procs");
  w.value(config.max_procs);
  w.key("procs_per_processor");
  w.value(config.procs_per_processor);
  w.key("seed");
  w.value(config.seed);
  w.key("backoff_max");
  w.value(config.backoff_max);
  w.key("probes_enabled");
  w.value(static_cast<bool>(MSQ_OBS));
  w.key("series");
  w.begin_array();
  for (const StallSeries& s : all_series) {
    w.begin_object();
    w.key("algo");
    w.value(s.algo);
    w.key("source");
    w.value("real");
    w.key("points");
    w.begin_array();
    for (const StallPoint& p : s.points) {
      w.begin_object();
      w.key("procs");
      w.value(static_cast<std::uint64_t>(p.procs));
      w.key("net_seconds_per_million_pairs");
      w.value(p.net_seconds_per_million);
      const double net_actual =
          p.net_seconds_per_million * static_cast<double>(config.pairs) / 1e6;
      w.key("throughput_pairs_per_sec");
      w.value(net_actual > 0 ? static_cast<double>(config.pairs) / net_actual
                             : 0.0);
      w.key("ops");
      w.value(p.ops);
      w.key("empty_dequeues");
      w.value(p.empty_dequeues);
      w.key("enqueue_failures");
      w.value(p.enqueue_failures);
      w.key("p99_ns");
      w.value(p.p99_ns);
      w.key("p999_ns");
      w.value(p.p999_ns);
      w.key("injected_stall_ns");
      w.value(p.injected_ns);
      w.key("counters");
      obs::write_counters_json(w, p.counters, p.ops);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  std::cout << "wrote " << config.json_path << '\n';
}

int run(const FigConfig& config, const std::vector<std::uint64_t>& stalls,
        const std::string& only) {
  obs::reset();
  obs::arm();
#if !MSQ_PROBES
  std::cerr << "fig_stall: built with MSQ_PROBES=0 -- the fault sites are "
               "compiled out, every stall duration degenerates to 0\n";
#endif

  std::vector<Variant> variants = make_variants();
  if (!only.empty()) {
    std::erase_if(variants,
                  [&](const Variant& v) { return v.name != only; });
    if (variants.empty()) {
      std::cerr << "--only: unknown variant '" << only << "'\n";
      return 1;
    }
  }
  std::vector<StallSeries> all_series;
  all_series.reserve(variants.size() * stalls.size());
  for (const Variant& v : variants) {
    for (const std::uint64_t us : stalls) {
      all_series.push_back(
          {v.name + "+stall" + std::to_string(us) + "us", {}});
    }
  }

  const double scale = 1e6 / static_cast<double>(config.pairs);
  for (std::uint32_t threads = 1; threads <= config.max_procs; ++threads) {
    std::size_t series_idx = 0;
    for (const Variant& v : variants) {
      for (const std::uint64_t us : stalls) {
        // Progress to stderr BEFORE each run: a watchdog abort then names
        // the run it fired in (breadcrumbs alone accumulate across runs).
        std::cerr << "[fig_stall] " << v.name << " stall=" << us
                  << "us procs=" << threads << "\n";
        // Discarded warmup (same rationale as fig_sharded: first run of a
        // row absorbs cache/scheduler warmup).  Warm up unstalled -- the
        // warmup exists for the memory system, not the fault layer.
        (void)v.run(v.site, threads, 0, config);
        const obs::Snapshot before = obs::snapshot();
        const scenario::StampedLoopResult r =
            v.run(v.site, threads, us, config);

        StallPoint point;
        point.procs = threads;
        point.net_seconds_per_million = r.elapsed_seconds * scale;
        point.ops = r.enqueues + r.dequeues + r.empty_dequeues +
                    r.enqueue_failures;
        point.empty_dequeues = r.empty_dequeues;
        point.enqueue_failures = r.enqueue_failures;
        point.p99_ns = r.sojourn_ns.percentile(99.0);
        point.p999_ns = r.sojourn_ns.percentile(99.9);
        point.injected_ns = r.injected_stall_ns;
        point.counters = obs::snapshot() - before;
        all_series[series_idx++].points.push_back(point);
      }
    }
    std::cout << "swept procs=" << threads << "\n";
  }
  print_tables(config, all_series);
  if (config.json) write_json(config, all_series);
  return 0;
}

}  // namespace
}  // namespace msq::bench

int main(int argc, char** argv) {
  std::vector<std::uint64_t> stalls;
  std::string only;
  if (!msq::bench::extract_only(argc, argv, only)) return 1;
  if (!msq::bench::extract_stalls(argc, argv, stalls)) return 1;
  msq::bench::FigConfig config;
  config.title = "item sojourn tail latency vs injected stalls";
  config.json_path = "BENCH_stall.json";
  if (!msq::bench::parse_args(argc, argv, config)) return 1;
  return msq::bench::run(config, stalls, only);
}
