// Ablation A2: bounded exponential backoff on vs. off (paper section 4:
// "performance was not sensitive to the exact choice of backoff parameters
// in programs that do at least a modest amount of work between queue
// operations" -- but REMOVING it entirely under high contention does hurt,
// which is why they use it).
//
// Runs the dedicated-machine sweep twice: with the default bounded
// exponential backoff and with backoff disabled (retry immediately).
#include <iostream>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  msq::bench::FigConfig config;
  config.procs_per_processor = 1;
  config.max_procs = 8;
  if (!msq::bench::parse_args(argc, argv, config)) return 1;

  config.title = "Ablation A2a: bounded exponential backoff ON (max window 1024)";
  config.backoff_max = 1024;
  config.json_path = "BENCH_ablate_backoff_on.json";
  msq::bench::run_figure(config);

  std::cout << '\n';
  config.title = "Ablation A2b: backoff OFF (immediate retry)";
  config.backoff_max = 0;
  config.json_path = "BENCH_ablate_backoff_off.json";
  msq::bench::run_figure(config);
  return 0;
}
