// Cross-queue memory-footprint family (ISSUE 10, EXPERIMENTS.md A10): the
// quantitative side of the bounded-memory story that motivates the SCQ.
//
// Every queue in the library makes a different memory promise:
//
//   msq     pool-backed free list: nodes outstanding == queue occupancy
//           (+1 dummy).  Bounded by the POOL, not the queue -- a slow
//           consumer lets producers push occupancy (and thus node usage)
//           all the way to pool exhaustion.
//   msq_hp  heap + hazard pointers: no pool, no refusal.  Outstanding
//           nodes = occupancy + the retired-but-unreclaimed limbo
//           population; a slow consumer grows it without bound.
//   segq    the same story at segment granularity (64 slots per node).
//   ring    fixed 2^k slot array allocated at construction; full stop at
//           capacity.  Bounded, but a stalled peer BLOCKS the matching op.
//   scq     fixed data array + two 2n index rings allocated at
//           construction; full stop at capacity, and lock-free in both
//           directions (the bounded-memory + non-blocking combination the
//           other five each give up half of).
//   valois  reference-counted pool: one delayed reader holding a SafeRead
//           reference pins every subsequently dequeued node (paper
//           section 1 -- "we ran out of memory several times... using a
//           free list initialized with 64,000 nodes"), so bounded
//           OCCUPANCY still exhausts an arbitrarily large pool.
//   wfq     pool-backed like msq, plus wait-free helping; helping bounds
//           STEPS, not memory -- a slow consumer grows occupancy just the
//           same.
//
// Two scenarios per queue, one producer + one consumer each:
//
//   steady  occupancy is credit-capped at --occupancy (default 12, the
//           paper's experiment): measures the resident footprint a
//           well-behaved bounded workload pays per queued element.
//   stall   the consumer is slowed -- via the fault layer's sticky-victim
//           stall sites where the algorithm has a consumer-only window
//           (ms.D12 / segq.faa_deq / scq.deq / wfq.claim), via a plain
//           harness sleep for the two queues without such a site (msq_hp,
//           ring: the slow consumer is the SCENARIO here, not a window
//           inside an operation), and via the paper's delayed SafeRead
//           reader for valois (its exhaustion needs no slow consumer at
//           all -- the credit cap stays ON and the pool still drains).
//           Producers shed on refusal (counted), so the run always
//           terminates.  Measures peak nodes/bytes actually resident.
//
// Peaks come from the obs pool gauge (obs::pool_gauge_hwm -- freelist,
// refcount pool, and msq_hp's heap nodes all feed it; zero-cost and zero
// when probes are off) for the dynamically allocating queues, and from the
// fixed preallocation for ring/scq, whose enqueue path never allocates.
//
// The headline check, asserted by CI over the emitted BENCH_memory.json
// (schema msq-memory-v1, tools/check_bench_json.py): under the stall
// scenario the scq's peak stays at its fixed capacity while the unbounded
// queues' peaks sail past it.
//
// Flags: the common fig set (--pairs/--seed/--csv/--json) plus
//   --occupancy N   steady-state occupancy credit (default 12)
//   --capacity N    pool size for the pool-backed queues (default 64000,
//                   the paper's free-list size)
//   --stall-us D    consumer stall per sticky hit, microseconds
//                   (default 2000; one hit in 128 stalls)
//   --only NAME     run one family (msq/msq_hp/segq/ring/scq/valois/wfq);
//                   `valois_memory` is exactly this bench with
//                   --only valois injected (the retired A4 driver)
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/watchdog.hpp"
#include "fig_common.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "queues/queues.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::bench {
namespace {

/// One sticky-victim sleep per this many consumer hits: enough pressure to
/// let a free-running producer overtake, small enough that a full drain of
/// the default pool costs ~1s of injected sleep.
constexpr std::uint64_t kStallEvery = 128;

struct MemCfg {
  std::uint64_t items = 0;      // values the producer offers per run
  std::uint32_t occupancy = 0;  // steady-state credit cap
  std::uint32_t capacity = 0;   // pool size for pool-backed queues
  std::uint64_t stall_us = 0;
};

struct MemRun {
  std::string algo;
  std::string scenario;  // "steady" | "stall"
  std::uint64_t capacity_nodes = 0;  // allocation ceiling (0 = plain heap)
  std::uint64_t node_bytes = 0;      // allocation grain (segq: a segment)
  std::uint64_t peak_nodes = 0;      // high-water nodes resident
  std::uint64_t peak_bytes = 0;      // peak_nodes * node_bytes
  double bytes_per_element = 0;      // peak_bytes / occupancy credit
  std::uint64_t ops = 0;
  std::uint64_t enqueue_failures = 0;
  bool memory_bounded = false;  // peak can never exceed capacity_nodes
  obs::Snapshot counters;
};

struct LoopStats {
  std::uint64_t enqueues = 0;
  std::uint64_t dequeues = 0;
  std::uint64_t empty_dequeues = 0;
  std::uint64_t enqueue_failures = 0;
};

/// 1 producer + 1 consumer.  `occupancy_cap` > 0 reserves a credit BEFORE
/// each enqueue (so the gauge never undercounts a momentary overshoot);
/// 0 lets the producer free-run.  The producer sheds on refusal -- no
/// retry -- so a dry pool or full ring never wedges the run.  The
/// consumer's optional harness sleep (`sleep_every` > 0) is the slow-
/// consumer injection for the queues without a consumer-only fault site.
template <typename Q>
LoopStats run_traffic(Q& queue, std::uint64_t items,
                      std::uint32_t occupancy_cap, std::uint64_t sleep_every,
                      std::uint64_t sleep_us) {
  LoopStats stats;
  std::atomic<std::uint64_t> in_flight{0};
  std::atomic<bool> produced_all{false};

  std::thread producer([&] {
    std::uint64_t enq = 0;
    std::uint64_t failures = 0;
    for (std::uint64_t i = 0; i < items; ++i) {
      if (occupancy_cap > 0) {
        // acquire pairs with the consumer's release decrement
        while (in_flight.load(std::memory_order_acquire) >= occupancy_cap) {
          std::this_thread::yield();
        }
        in_flight.fetch_add(1, std::memory_order_acq_rel);
      }
      if (queue.try_enqueue(i)) {
        ++enq;
      } else {
        ++failures;
        if (occupancy_cap > 0) {
          in_flight.fetch_sub(1, std::memory_order_acq_rel);
        }
      }
    }
    stats.enqueues = enq;
    stats.enqueue_failures = failures;
    produced_all.store(true, std::memory_order_release);
  });

  std::thread consumer([&] {
    std::uint64_t out = 0;
    std::uint64_t deq = 0;
    std::uint64_t empty = 0;
    for (;;) {
      if (queue.try_dequeue(out)) {
        ++deq;
        if (occupancy_cap > 0) {
          in_flight.fetch_sub(1, std::memory_order_acq_rel);
        }
        if (sleep_every > 0 && deq % sleep_every == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
        }
        continue;
      }
      ++empty;
      if (produced_all.load(std::memory_order_acquire)) {
        // Every successful enqueue happened-before that release store, so
        // one more miss after observing it certifies the queue is drained.
        if (!queue.try_dequeue(out)) break;
        ++deq;
        if (occupancy_cap > 0) {
          in_flight.fetch_sub(1, std::memory_order_acq_rel);
        }
      } else {
        std::this_thread::yield();
      }
    }
    stats.dequeues = deq;
    stats.empty_dequeues = empty;
  });

  producer.join();
  consumer.join();
  return stats;
}

/// The queues disagree on construction (MsQueueHp takes a HazardDomain,
/// everyone else a capacity) and none of them move, so build in place.
template <typename Q>
std::unique_ptr<Q> make_queue(std::uint32_t capacity) {
  if constexpr (std::is_constructible_v<Q, std::uint32_t>) {
    return std::make_unique<Q>(capacity);
  } else {
    return std::make_unique<Q>();
  }
}

/// The allocation ceiling the gauge's peak is compared against, in the
/// gauge's own units (nodes for the node pools, segments for segq,
/// slots for the fixed rings; 0 = plain heap, no ceiling).
template <typename Q>
std::uint64_t allocation_ceiling(Q& queue, std::uint32_t cap_request) {
  if constexpr (requires { queue.unsafe_free_segments(); }) {
    // segq: free segments + the already-allocated initial one.
    return queue.unsafe_free_segments() +
           static_cast<std::uint64_t>(
               std::max<std::int64_t>(obs::pool_gauge_current(), 0));
  } else if constexpr (requires { queue.capacity(); }) {
    return queue.capacity();  // ring, scq: the fixed preallocation
  } else if constexpr (requires { queue.pool().capacity(); }) {
    return queue.pool().capacity();  // valois
  } else if constexpr (std::is_constructible_v<Q, std::uint32_t>) {
    return cap_request + 1;  // msq, wfq: capacity items + the dummy
  } else {
    return 0;  // msq_hp: heap-allocated, no ceiling to run into
  }
}

enum class StallMode {
  kFaultSite,      // sticky-victim sleep at a consumer-only probe site
  kHarnessSleep,   // plain consumer sleep (no consumer-only site exists)
  kDelayedReader,  // valois: the paper's pinned SafeRead reference
};

template <typename Q>
MemRun run_family(const std::string& algo, bool bounded, StallMode mode,
                  const char* site, bool stall, const MemCfg& mc) {
  MemRun r;
  r.algo = algo;
  r.scenario = stall ? "stall" : "steady";
  r.memory_bounded = bounded;
  r.node_bytes = Q::node_bytes();

  const std::uint32_t cap_request = bounded ? mc.occupancy : mc.capacity;

  // Stalled runs sleep ~items/kStallEvery times; budget generously.
  const auto deadline = std::chrono::milliseconds(
      120'000 + 4 * mc.items * mc.stall_us / (kStallEvery * 1000));
  fault::Watchdog watchdog(deadline, "fig_memory run");

  obs::pool_gauge_reset();  // BEFORE construction: the dummy/initial
                            // segment is part of the footprint
  const obs::Snapshot before = obs::snapshot();

  fault::FaultPlan plan;
  std::uint64_t sleep_every = 0;
  if (stall && mode == StallMode::kFaultSite) {
    plan.stall_at(site, std::chrono::microseconds(mc.stall_us), /*skip=*/0,
                  /*every=*/kStallEvery);
    plan.arm();
  }
  if (stall && mode == StallMode::kHarnessSleep) sleep_every = kStallEvery;

  {
    auto queue = make_queue<Q>(cap_request);
    r.capacity_nodes = allocation_ceiling(*queue, cap_request);

    // The delayed-reader scenario keeps the occupancy credit ON: the
    // whole point is that BOUNDED occupancy still exhausts the pool.
    const bool delayed = stall && mode == StallMode::kDelayedReader;
    const std::uint32_t credit =
        (!stall || delayed) ? mc.occupancy : 0;

    std::atomic<bool> stop_reader{false};
    std::thread reader;
    if constexpr (requires { queue->pool().safe_read(queue->head_cell()); }) {
      if (delayed) {
        reader = std::thread([&, q = queue.get()] {
          // Grab a reference, sleep through "an arbitrary number" of other
          // processes' operations, release, repeat (paper section 1).
          while (!stop_reader.load(std::memory_order_acquire)) {
            const std::uint32_t pinned =
                q->pool().safe_read(q->head_cell()).index();
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            if (pinned != tagged::kNullIndex) q->pool().release(pinned);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        });
      }
    }

    const LoopStats s =
        run_traffic(*queue, mc.items, credit, sleep_every, mc.stall_us);

    stop_reader.store(true, std::memory_order_release);
    if (reader.joinable()) reader.join();
    plan.disarm();

    r.enqueue_failures = s.enqueue_failures;
    r.ops = s.enqueues + s.dequeues + s.empty_dequeues + s.enqueue_failures;
    // ring/scq never allocate after construction: their peak IS the fixed
    // preallocation.  Everyone else reports the gauge's high-water mark.
    r.peak_nodes =
        bounded ? r.capacity_nodes
                : static_cast<std::uint64_t>(
                      std::max<std::int64_t>(obs::pool_gauge_hwm(), 0));
  }

  r.peak_bytes = r.peak_nodes * r.node_bytes;
  r.bytes_per_element =
      mc.occupancy > 0
          ? static_cast<double>(r.peak_bytes) / mc.occupancy
          : 0.0;
  r.counters = obs::snapshot() - before;
  return r;
}

using RunFn = MemRun (*)(const std::string&, bool, StallMode, const char*,
                         bool, const MemCfg&);

struct Family {
  std::string name;
  bool bounded;
  StallMode mode;
  const char* site;  // StallMode::kFaultSite only
  RunFn run;
};

std::vector<Family> make_families() {
  using std::uint64_t;
  return {
      {"msq", false, StallMode::kFaultSite, "ms.D12",
       &run_family<queues::MsQueue<uint64_t>>},
      {"msq_hp", false, StallMode::kHarnessSleep, nullptr,
       &run_family<queues::MsQueueHp<uint64_t>>},
      {"segq", false, StallMode::kFaultSite, "segq.faa_deq",
       &run_family<queues::SegmentQueue<uint64_t>>},
      {"ring", true, StallMode::kHarnessSleep, nullptr,
       &run_family<queues::RingQueue<uint64_t>>},
      {"scq", true, StallMode::kFaultSite, "scq.deq",
       &run_family<queues::ScqQueue<uint64_t>>},
      {"valois", false, StallMode::kDelayedReader, nullptr,
       &run_family<queues::ValoisQueue<uint64_t>>},
      {"wfq", false, StallMode::kFaultSite, "wfq.claim",
       &run_family<queues::WfQueue<uint64_t>>},
  };
}

/// Parse "--only NAME" out of argv (and remove it) before the common
/// parser runs; empty = all families.
bool extract_only(int& argc, char** argv, std::string& out) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--only") != 0) continue;
    if (i + 1 >= argc) {
      std::cerr << "--only needs a family name "
                   "(msq/msq_hp/segq/ring/scq/valois/wfq)\n";
      return false;
    }
    out = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return true;
  }
  return true;
}

/// Parse "--<flag> N" out of argv (and remove it); leaves `out` alone when
/// the flag is absent.
bool extract_u64(int& argc, char** argv, const char* flag,
                 std::uint64_t& out) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) != 0) continue;
    if (i + 1 >= argc) {
      std::cerr << flag << " needs a number\n";
      return false;
    }
    char* end = nullptr;
    out = std::strtoull(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0') {
      std::cerr << flag << ": bad number '" << argv[i + 1] << "'\n";
      return false;
    }
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return true;
  }
  return true;
}

void print_table(const std::vector<MemRun>& runs, bool csv) {
  if (csv) {
    std::cout << "algo,scenario,capacity_nodes,node_bytes,peak_nodes,"
                 "peak_bytes,bytes_per_element,enqueue_failures,bounded\n";
    for (const MemRun& r : runs) {
      std::cout << r.algo << ',' << r.scenario << ',' << r.capacity_nodes
                << ',' << r.node_bytes << ',' << r.peak_nodes << ','
                << r.peak_bytes << ',' << r.bytes_per_element << ','
                << r.enqueue_failures << ',' << (r.memory_bounded ? 1 : 0)
                << '\n';
    }
    return;
  }
  std::cout << "\npeak resident memory (nodes = the queue's allocation "
               "grain; segq counts segments)\n";
  std::cout << std::left << std::setw(8) << "algo" << std::setw(8)
            << "scen" << std::right << std::setw(10) << "cap_nodes"
            << std::setw(8) << "node_B" << std::setw(11) << "peak_nodes"
            << std::setw(12) << "peak_bytes" << std::setw(10) << "B/elem"
            << std::setw(11) << "enq_fail" << std::setw(9) << "bounded"
            << '\n';
  for (const MemRun& r : runs) {
    std::cout << std::left << std::setw(8) << r.algo << std::setw(8)
              << r.scenario << std::right << std::setw(10)
              << r.capacity_nodes << std::setw(8) << r.node_bytes
              << std::setw(11) << r.peak_nodes << std::setw(12)
              << r.peak_bytes << std::setw(10) << std::fixed
              << std::setprecision(1) << r.bytes_per_element << std::setw(11)
              << r.enqueue_failures << std::setw(9)
              << (r.memory_bounded ? "yes" : "no") << '\n';
  }
}

void write_json(const FigConfig& config, const MemCfg& mc,
                const std::vector<MemRun>& runs) {
  std::ofstream out(config.json_path);
  if (!out) {
    std::cerr << "cannot open " << config.json_path << " for writing\n";
    return;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema");
  w.value("msq-memory-v1");
  w.key("title");
  w.value(config.title);
  w.key("pairs");
  w.value(mc.items);
  w.key("occupancy");
  w.value(static_cast<std::uint64_t>(mc.occupancy));
  w.key("capacity");
  w.value(static_cast<std::uint64_t>(mc.capacity));
  w.key("stall_us");
  w.value(mc.stall_us);
  w.key("seed");
  w.value(config.seed);
  w.key("probes_enabled");
  w.value(static_cast<bool>(MSQ_OBS));
  w.key("runs");
  w.begin_array();
  for (const MemRun& r : runs) {
    w.begin_object();
    w.key("algo");
    w.value(r.algo);
    w.key("scenario");
    w.value(r.scenario);
    w.key("capacity_nodes");
    w.value(r.capacity_nodes);
    w.key("node_bytes");
    w.value(r.node_bytes);
    w.key("peak_nodes");
    w.value(r.peak_nodes);
    w.key("peak_bytes");
    w.value(r.peak_bytes);
    w.key("bytes_per_element");
    w.value(r.bytes_per_element);
    w.key("ops");
    w.value(r.ops);
    w.key("enqueue_failures");
    w.value(r.enqueue_failures);
    w.key("memory_bounded");
    w.value(r.memory_bounded);
    w.key("counters");
    obs::write_counters_json(w, r.counters, r.ops);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  std::cout << "wrote " << config.json_path << '\n';
}

int run(const FigConfig& config, const MemCfg& mc, const std::string& only) {
  obs::reset();
  obs::arm();
#if !MSQ_PROBES
  std::cerr << "fig_memory: built with MSQ_PROBES=0 -- the pool gauge and "
               "fault sites are compiled out; peaks for the pool-backed "
               "queues degenerate to 0\n";
#endif

  std::vector<Family> families = make_families();
  if (!only.empty()) {
    std::erase_if(families,
                  [&](const Family& f) { return f.name != only; });
    if (families.empty()) {
      std::cerr << "--only: unknown family '" << only << "'\n";
      return 1;
    }
  }

  std::vector<MemRun> runs;
  runs.reserve(families.size() * 2);
  for (const Family& f : families) {
    for (const bool stall : {false, true}) {
      // Progress to stderr BEFORE each run: a watchdog abort then names
      // the run it fired in.
      std::cerr << "[fig_memory] " << f.name << ' '
                << (stall ? "stall" : "steady") << '\n';
      runs.push_back(f.run(f.name, f.bounded, f.mode, f.site, stall, mc));
    }
  }
  print_table(runs, config.csv);
  if (config.json) write_json(config, mc, runs);
  return 0;
}

}  // namespace
}  // namespace msq::bench

int fig_memory_main(int argc, char** argv) {
  std::string only;
  std::uint64_t occupancy = 12;    // the paper's experiment
  std::uint64_t capacity = 64'000;  // the paper's free-list size
  std::uint64_t stall_us = 2'000;
  if (!msq::bench::extract_only(argc, argv, only)) return 1;
  if (!msq::bench::extract_u64(argc, argv, "--occupancy", occupancy))
    return 1;
  if (!msq::bench::extract_u64(argc, argv, "--capacity", capacity)) return 1;
  if (!msq::bench::extract_u64(argc, argv, "--stall-us", stall_us)) return 1;
  msq::bench::FigConfig config;
  config.title = "peak resident memory by queue family";
  config.json_path = "BENCH_memory.json";
  config.pairs = 200'000;  // items per run; --pairs overrides
  if (!msq::bench::parse_args(argc, argv, config)) return 1;
  if (occupancy == 0 || capacity == 0 || occupancy > capacity) {
    std::cerr << "need 0 < --occupancy <= --capacity\n";
    return 1;
  }
  msq::bench::MemCfg mc;
  mc.items = config.pairs;
  mc.occupancy = static_cast<std::uint32_t>(occupancy);
  mc.capacity = static_cast<std::uint32_t>(capacity);
  mc.stall_us = stall_us;
  return msq::bench::run(config, mc, only);
}

#ifndef FIG_MEMORY_NO_MAIN
int main(int argc, char** argv) { return fig_memory_main(argc, argv); }
#endif
