#!/usr/bin/env python3
"""Fault-site coverage lint for the C++ sources (CI-enforced).

The fault-tolerance story rests on labelled fault sites: every
`MSQ_PROBE("site")` / `MSQ_PROBE_COUNT("site", counter)` in src/ marks a
pseudo-code window where a thread can be delayed, stalled, or crash-stopped
by a FaultPlan (src/fault/fault_plan.hpp).  A site nothing injects into is
dead instrumentation -- it LOOKS like a proven window but no experiment
ever parks a victim there, and a regression that makes it unreachable (or
renames it out from under a test's plan) goes unnoticed.

One rule:

1. site-covered: every probe site string extracted from src/ must appear,
   quoted verbatim, in at least one file under tests/ or bench/ -- i.e.
   some crash sweep, halt/stall/delay plan, or latency experiment targets
   it.  A site that is deliberately exempt must carry a
   `// fault-cover: <why>` waiver on the probe line or one of the two
   lines above (e.g. benchmark-driver bookkeeping that is not an algorithm
   window).

The converse direction is checked too, as a warning-grade rule:

2. no-phantom-targets: a quoted probe-site-shaped string passed to a
   FaultPlan rule (halt_at/stall_at/delay_at/hits) in tests/ or bench/
   that matches NO site in src/ is a plan that can never fire -- almost
   always a renamed site.  Reported as a violation so renames fail CI
   instead of silently neutering an experiment.

Usage:
    tools/fault_sites_lint.py [--self-test] [ROOT]   (default ROOT: repo root)

Exits non-zero iff violations (or self-test failures) are found.
"""

import os
import re
import sys

PROBE_RE = re.compile(r'MSQ_PROBE(?:_COUNT)?\(\s*"([^"]+)"')
WAIVER_RE = re.compile(r"//\s*fault-cover:\s*\S")
# FaultPlan rule calls and hit queries in tests/bench that name a site.
PLAN_TARGET_RE = re.compile(
    r'\b(?:halt_at|stall_at|delay_at|hits)\(\s*"([^"]+)"')

SRC_EXTS = (".hpp", ".cpp", ".h", ".cc")


class Violation:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


class Site:
    def __init__(self, name, path, line_no, waived):
        self.name = name
        self.path = path
        self.line_no = line_no
        self.waived = waived


def extract_sites(path, lines):
    """All probe sites declared in one source file, with waiver state."""
    sites = []
    for i, line in enumerate(lines):
        for m in PROBE_RE.finditer(line):
            window = lines[max(0, i - 2):i + 1]
            waived = any(WAIVER_RE.search(w) for w in window)
            sites.append(Site(m.group(1), path, i + 1, waived))
    return sites


def extract_plan_targets(path, lines):
    """(site, path, line_no) for every FaultPlan rule/query in a test file."""
    targets = []
    for i, line in enumerate(lines):
        for m in PLAN_TARGET_RE.finditer(line):
            targets.append((m.group(1), path, i + 1))
    return targets


def covered_sites(corpus):
    """Site strings quoted anywhere in the tests/bench corpus.

    `corpus` maps path -> file text.  Coverage is the exact quoted string:
    "ms.D12" in a plan does NOT cover "msdw.D12" and vice versa.
    """
    covered = set()
    for text in corpus.values():
        for m in re.finditer(r'"([^"\n]+)"', text):
            covered.add(m.group(1))
    return covered


def check(sites, corpus):
    """Run both rules over extracted sites and the tests/bench corpus."""
    out = []
    covered = covered_sites(corpus)
    declared = {s.name for s in sites}
    seen = set()
    for s in sites:
        if s.name in seen:
            continue  # one verdict per site, at its first declaration
        seen.add(s.name)
        if s.waived or s.name in covered:
            continue
        out.append(Violation(
            s.path, s.line_no, "site-covered",
            f'fault site "{s.name}" is targeted by nothing under tests/ or '
            f"bench/ -- add a FaultPlan experiment that names it, or waive "
            f"with `// fault-cover: <why>` at the probe"))
    for path, text in sorted(corpus.items()):
        for name, tpath, line_no in extract_plan_targets(
                path, text.splitlines()):
            if "." not in name:
                continue  # not site-shaped (e.g. a file path or message)
            if name not in declared:
                out.append(Violation(
                    tpath, line_no, "no-phantom-targets",
                    f'plan targets "{name}" but no MSQ_PROBE in src/ '
                    f"declares it -- renamed or deleted site?"))
    return out


# ---------------------------------------------------------------------------
# Filesystem driver
# ---------------------------------------------------------------------------

def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def iter_files(root, subdir):
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, subdir)):
        for name in sorted(filenames):
            if name.endswith(SRC_EXTS):
                yield os.path.join(dirpath, name)


def lint_tree(root):
    sites = []
    for path in iter_files(root, "src"):
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        sites.extend(extract_sites(os.path.relpath(path, root), lines))
    corpus = {}
    for subdir in ("tests", "bench"):
        for path in iter_files(root, subdir):
            with open(path, encoding="utf-8") as f:
                corpus[os.path.relpath(path, root)] = f.read()
    return sites, check(sites, corpus)


# ---------------------------------------------------------------------------
# Self-test fixtures
# ---------------------------------------------------------------------------

GOOD_SRC = """\
void enqueue() {
  MSQ_PROBE("q.link");
  MSQ_PROBE_COUNT("q.swing", kCasAttempt);
  // fault-cover: driver-loop bookkeeping, not an algorithm window
  MSQ_PROBE("bench.retry");
}
"""

BAD_SRC = """\
void dequeue() {
  MSQ_PROBE("q.orphan");
}
"""

GOOD_CORPUS = """\
TEST(F, T) {
  plan.halt_at("q.link");
  EXPECT_GT(plan.hits("q.swing"), 0u);
}
"""

PHANTOM_CORPUS = """\
TEST(F, T) {
  plan.stall_at("q.renamed_away", 1ms);
}
"""


def self_test():
    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    corpus = {"tests/good_test.cpp": GOOD_CORPUS}
    good_sites = extract_sites("src/good.hpp", GOOD_SRC.splitlines())
    good = check(good_sites, corpus)
    expect(not good, f"clean fixture flagged: {[str(v) for v in good]}")

    bad = check(
        good_sites + extract_sites("src/bad.hpp", BAD_SRC.splitlines()),
        corpus)
    expect(len(bad) == 1 and bad[0].rule == "site-covered",
           f"uncovered site not flagged exactly once: "
           f"{[str(v) for v in bad]}")

    phantom = check(
        good_sites,
        {"tests/good_test.cpp": GOOD_CORPUS,
         "tests/phantom_test.cpp": PHANTOM_CORPUS})
    expect(len(phantom) == 1 and phantom[0].rule == "no-phantom-targets",
           f"phantom plan target not flagged exactly once: "
           f"{[str(v) for v in phantom]}")

    # Waivers must not leak downward past two lines.
    far = "// fault-cover: too far away\n\n\n\nMSQ_PROBE(\"q.far\");\n"
    far_v = check(
        good_sites + extract_sites("src/far.hpp", far.splitlines()), corpus)
    expect(len(far_v) == 1 and far_v[0].rule == "site-covered",
           f"waiver beyond the 2-line window wrongly honoured: "
           f"{[str(v) for v in far_v]}")

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}")
        return 1
    print("self-test passed: uncovered-site, phantom-target, and "
          "waiver-window fixtures all behave")
    return 0


def main(argv):
    if "--self-test" in argv[1:]:
        return self_test()
    root = argv[1] if len(argv) > 1 else repo_root()
    sites, violations = lint_tree(root)
    for v in violations:
        print(v)
    unique = {s.name for s in sites}
    waived = {s.name for s in sites if s.waived}
    print(f"fault_sites_lint: {len(unique)} sites, {len(waived)} waived, "
          f"{len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
