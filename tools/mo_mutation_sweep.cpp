// Memory-order mutation sweep: the machine-checked proof behind every
// annotation in sim/mo_table.hpp.
//
// For every site in kMoSites and every strictly weaker order it could be
// demoted to, this tool rebuilds the relevant simulated world with exactly
// that ONE site mutated and runs sleep-set DPOR (plus TSO store-buffer
// exploration for the seq_cst litmus sites) under the order-aware hb
// tracker.  The verdict must match the site's needs_* flags:
//
//   * every load-bearing weakening is CAUGHT -- by an hb data race with a
//     pseudo-code-labelled trace, or by a terminal-state check (queue
//     invariant broken, payload read stale, lock counter lost an update,
//     SC-forbidden litmus outcome);
//   * every weakening the table claims masked/tolerated stays SILENT
//     across the full (budget-bounded) exploration.
//
// Two showcase assertions ride on top:
//
//   1. sb.store_flag -> release is caught ONLY by weak-memory execution:
//      the SC explorer (value checks AND hb tracker) is provably silent on
//      the same mutation, the TSO explorer produces the both-zero outcome.
//   2. lock.unlock_store -> relaxed never corrupts a terminal state (mutual
//      exclusion still holds under SC), yet the hb layer reports the
//      severed release edge -- the order-aware tracker is the only
//      detector.
//
// Exit status 0 iff every mutation verdict matches the table and all
// unmutated baselines are clean.  Run by ctest and by the CI weak-memory
// job; budgets are sized for a single-core runner.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/explore.hpp"
#include "sim/litmus_sim.hpp"
#include "sim/mo_table.hpp"
#include "sim/ms_queue_sim.hpp"
#include "sim/queue_iface.hpp"
#include "sim/scq_ring_sim.hpp"
#include "sim/sim_freelist.hpp"
#include "sim/sim_lock.hpp"
#include "sim/valois_queue_sim.hpp"
#include "tagged/tagged_index.hpp"

namespace msq::sim {
namespace {

[[nodiscard]] EngineConfig sweep_config(bool weak, check::SyncModel model) {
  EngineConfig config;
  config.race_detect = true;
  config.sync_model = model;
  config.weak_memory = weak;
  return config;
}

// Thrown out of explore_dpor's on_done to stop a sweep run at the first
// violation (the callbacks are exception-transparent); silent-expected runs
// never throw and pay for the full exploration.
struct CaughtSignal {};

/// Verdict of exploring one world under one (possibly mutated) table.
struct RunOutcome {
  bool hb_hit = false;        // hb tracker reported a data race
  bool terminal_hit = false;  // a completed execution failed its checks
  std::string detail;         // first trace / terminal message
  std::uint64_t schedules = 0;
  bool exhausted = false;

  [[nodiscard]] bool caught() const noexcept { return hb_hit || terminal_hit; }
};

class WorldBase {
 public:
  virtual ~WorldBase() = default;
  [[nodiscard]] virtual Engine& engine() = 0;
  /// Throws std::runtime_error when a COMPLETED execution violates the
  /// world's semantic checks; truncated runs (step budget) are skipped.
  virtual void check_terminal() = 0;
};

// --- world A/B/C: the MS queue with a plain-payload handshake ---------------
//
// Producers write a plain payload word before enqueueing its index;
// consumers plain-read the payload after dequeueing.  With the annotated
// orders the queue's publication edges keep those plain accesses ordered;
// a weakening that severs a load-bearing edge surfaces as an hb race on
// the payload (or on the queue words themselves for atomicity demotions).
class MsWorld final : public WorldBase {
 public:
  MsWorld(const MoTable* mo, bool weak, int producers,
          std::uint64_t values_per_producer, std::vector<int> consumer_attempts)
      : engine_(sweep_config(weak, check::SyncModel::kOrders)),
        queue_(engine_, /*capacity=*/2, /*backoff_max=*/0, mo),
        payload_(engine_.memory().alloc(8)) {
    for (int pi = 0; pi < producers; ++pi) {
      engine_.spawn(0, [this, pi, values_per_producer](Proc& p) {
        return producer(p, pi, values_per_producer);
      });
    }
    for (const int attempts : consumer_attempts) {
      engine_.spawn(0,
                    [this, attempts](Proc& p) { return consumer(p, attempts); });
    }
  }

  [[nodiscard]] Engine& engine() override { return engine_; }

  void check_terminal() override {
    if (!engine_.all_done()) return;
    queue_.check_invariants();
    if (bad_payload_) {
      throw std::runtime_error(
          "MS payload handshake: consumer read a stale plain payload");
    }
  }

 private:
  Task<void> producer(Proc& p, int pi, std::uint64_t n) {
    int budget = static_cast<int>(n) * 4;  // bounded pool-exhaustion retries
    for (std::uint64_t k = 0; k < n;) {
      const std::uint64_t v = static_cast<std::uint64_t>(pi) * 4 + k;
      co_await p.write(payload_ + v, 100 + v, check::MemOrder::kPlain);
      const bool ok = co_await queue_.enqueue(p, v);
      if (ok) {
        ++k;
        continue;
      }
      if (--budget <= 0) co_return;
    }
  }

  Task<void> consumer(Proc& p, int attempts) {
    for (int a = 0; a < attempts; ++a) {
      const std::uint64_t v = co_await queue_.dequeue(p);
      if (v == kEmpty) continue;
      const std::uint64_t seen =
          co_await p.read(payload_ + v, check::MemOrder::kPlain);
      if (seen != 100 + v) bad_payload_ = true;
    }
  }

  Engine engine_;
  SimMsQueue queue_;
  Addr payload_;
  bool bad_payload_ = false;
};

// --- world D: the Treiber pool's ownership hand-off -------------------------
//
// Two workers repeatedly pop a node, scribble a plain scratch word on it,
// verify, and push it back.  Pop confers exclusive ownership, so the plain
// accesses are ordered exactly when the push/pop CAS mesh is intact.
class PoolWorld final : public WorldBase {
 public:
  PoolWorld(const MoTable* mo, bool weak)
      : engine_(sweep_config(weak, check::SyncModel::kOrders)),
        pool_(engine_, /*capacity=*/2, /*words_per_node=*/3, mo) {
    for (int w = 0; w < 2; ++w) {
      engine_.spawn(0, [this, w](Proc& p) { return worker(p, w); });
    }
  }

  [[nodiscard]] Engine& engine() override { return engine_; }

  void check_terminal() override {
    if (!engine_.all_done()) return;
    if (bad_scratch_) {
      throw std::runtime_error(
          "pool ownership: scratch word read another worker's value");
    }
  }

 private:
  Task<void> worker(Proc& p, int id) {
    for (int round = 0; round < 2; ++round) {
      std::uint32_t node = tagged::kNullIndex;
      for (int attempt = 0; attempt < 4; ++attempt) {
        node = co_await pool_.allocate(p);
        if (node != tagged::kNullIndex) break;
      }
      if (node == tagged::kNullIndex) continue;
      const Addr scratch = pool_.extra_addr(node, 0);
      co_await p.write(scratch, 10 + static_cast<std::uint64_t>(id),
                       check::MemOrder::kPlain);
      const std::uint64_t seen =
          co_await p.read(scratch, check::MemOrder::kPlain);
      if (seen != 10 + static_cast<std::uint64_t>(id)) bad_scratch_ = true;
      co_await pool_.free(p, node);
    }
  }

  Engine engine_;
  SimNodePool pool_;
  bool bad_scratch_ = false;
};

// --- world E: TATAS lock around a plain counter ------------------------------
class LockWorld final : public WorldBase {
 public:
  LockWorld(const MoTable* mo, bool weak)
      : engine_(sweep_config(weak, check::SyncModel::kOrders)),
        lock_(engine_, /*backoff_max=*/0, mo),
        counter_(engine_.memory().alloc(1)) {
    for (int w = 0; w < 2; ++w) {
      engine_.spawn(0, [this](Proc& p) { return worker(p); });
    }
  }

  [[nodiscard]] Engine& engine() override { return engine_; }

  void check_terminal() override {
    if (!engine_.all_done()) return;
    if (engine_.memory().peek(counter_) != 2) {
      throw std::runtime_error("lock counter != 2 (lost update)");
    }
  }

 private:
  Task<void> worker(Proc& p) {
    co_await lock_.lock(p);
    const std::uint64_t v = co_await p.read(counter_, check::MemOrder::kPlain);
    co_await p.write(counter_, v + 1, check::MemOrder::kPlain);
    co_await lock_.unlock(p);
  }

  Engine engine_;
  SimTatasLock lock_;
  Addr counter_;
};

// --- world F: the Valois queue with the same payload handshake ---------------
class ValoisWorld final : public WorldBase {
 public:
  ValoisWorld(const MoTable* mo, bool weak, std::vector<int> consumer_attempts)
      : engine_(sweep_config(weak, check::SyncModel::kOrders)),
        queue_(engine_, /*capacity=*/2, /*backoff_max=*/0, mo),
        payload_(engine_.memory().alloc(2)) {
    engine_.spawn(0, [this](Proc& p) { return producer(p); });
    for (const int attempts : consumer_attempts) {
      engine_.spawn(0,
                    [this, attempts](Proc& p) { return consumer(p, attempts); });
    }
  }

  [[nodiscard]] Engine& engine() override { return engine_; }

  void check_terminal() override {
    if (!engine_.all_done()) return;
    queue_.check_invariants();
    if (bad_payload_) {
      throw std::runtime_error(
          "Valois payload handshake: consumer read a stale plain payload");
    }
  }

 private:
  Task<void> producer(Proc& p) {
    co_await p.write(payload_, 100, check::MemOrder::kPlain);
    const bool ok = co_await queue_.enqueue(p, 0);
    (void)ok;
  }

  Task<void> consumer(Proc& p, int attempts) {
    for (int a = 0; a < attempts; ++a) {
      const std::uint64_t v = co_await queue_.dequeue(p);
      if (v == kEmpty) continue;
      const std::uint64_t seen =
          co_await p.read(payload_ + v, check::MemOrder::kPlain);
      if (seen != 100 + v) bad_payload_ = true;
    }
  }

  Engine engine_;
  SimValoisQueue queue_;
  Addr payload_;
  bool bad_payload_ = false;
};

// --- worlds G/H: the litmus tests -------------------------------------------
class SbWorld final : public WorldBase {
 public:
  SbWorld(const MoTable* mo, bool weak)
      : engine_(sweep_config(weak, check::SyncModel::kOrders)),
        litmus_(engine_, mo) {
    engine_.spawn(0, [this](Proc& p) { return litmus_.run(p, 0); });
    engine_.spawn(0, [this](Proc& p) { return litmus_.run(p, 1); });
  }

  [[nodiscard]] Engine& engine() override { return engine_; }

  void check_terminal() override {
    if (!engine_.all_done()) return;
    if (litmus_.both_zero()) {
      throw std::runtime_error("SB litmus: both loads read 0 (SC-forbidden)");
    }
  }

 private:
  Engine engine_;
  SbLitmus litmus_;
};

class MpWorld final : public WorldBase {
 public:
  MpWorld(const MoTable* mo, bool weak)
      : engine_(sweep_config(weak, check::SyncModel::kOrders)),
        litmus_(engine_, mo) {
    engine_.spawn(0, [this](Proc& p) { return litmus_.producer(p); });
    engine_.spawn(0, [this](Proc& p) { return litmus_.consumer(p); });
  }

  [[nodiscard]] Engine& engine() override { return engine_; }

  void check_terminal() override {
    if (!engine_.all_done()) return;
    if (litmus_.stale_data()) {
      throw std::runtime_error(
          "MP litmus: consumer saw the flag but stale data");
    }
  }

 private:
  Engine engine_;
  MpLitmus litmus_;
};

// --- world S/s: the SCQ index ring with a plain-payload handshake -----------
//
// Same shape as the MS worlds: producers plain-write a payload word keyed
// by the ring value before depositing it, consumers plain-read it after
// consuming.  The only publication edge between those plain accesses is
// the ring's own entry CAS / consume chain, so severing it surfaces as an
// hb race on the payload; atomicity demotions race on the ring words
// themselves.  half=1 (two entries) keeps DPOR small while still forcing
// cycle reuse, catch-up, and the threshold reset on every schedule.
class ScqWorld final : public WorldBase {
 public:
  ScqWorld(const MoTable* mo, std::uint64_t values,
           std::vector<int> consumer_attempts)
      : engine_(sweep_config(/*weak=*/false, check::SyncModel::kOrders)),
        ring_(engine_, /*half=*/1, /*full=*/false, mo),
        payload_(engine_.memory().alloc(8)) {
    engine_.spawn(0, [this, values](Proc& p) { return producer(p, values); });
    for (const int attempts : consumer_attempts) {
      engine_.spawn(0,
                    [this, attempts](Proc& p) { return consumer(p, attempts); });
    }
  }

  [[nodiscard]] Engine& engine() override { return engine_; }

  void check_terminal() override {
    if (!engine_.all_done()) return;
    if (bad_payload_) {
      throw std::runtime_error(
          "SCQ payload handshake: consumer read a stale plain payload");
    }
  }

 private:
  Task<void> producer(Proc& p, std::uint64_t n) {
    for (std::uint64_t v = 0; v < n; ++v) {
      co_await p.write(payload_ + v, 100 + v, check::MemOrder::kPlain);
      // half=1 only holds one index at a time, so value v+1 can need the
      // consumer to drain value v first; the FAA-round budget keeps
      // consumer-never-drains schedules finite for DPOR.
      const bool ok = co_await ring_.enqueue(
          p, static_cast<std::uint32_t>(v), /*max_rounds=*/5);
      if (!ok) co_return;
    }
  }

  Task<void> consumer(Proc& p, int attempts) {
    for (int a = 0; a < attempts; ++a) {
      const std::uint32_t v = co_await ring_.dequeue(p);
      if (v == SimScqRing::kBottom) continue;
      const std::uint64_t seen =
          co_await p.read(payload_ + v, check::MemOrder::kPlain);
      if (seen != 100 + v) bad_payload_ = true;
    }
  }

  Engine engine_;
  SimScqRing ring_;
  Addr payload_;
  bool bad_payload_ = false;
};

// --- world registry ----------------------------------------------------------
//
//  A  MS 1 producer (2 values) + 1 consumer            -- default MS world
//  B  MS 1 producer (3 values) + 2 consumers, pool 3   -- node recycling
//  C  MS 2 producers + 1 consumer                      -- enqueue/enqueue
//  D  Treiber pool ownership hand-off
//  E  TATAS lock + plain counter
//  F  Valois 1p1c                   V  Valois 1p2c (SafeRead revalidation)
//  G  SB litmus (weak memory)    g  SB litmus (SC)
//  H  MP litmus (SC)             h  MP litmus (weak memory)
//  W  MS 1 producer (1 value) + 1 consumer, weak memory (TSO baseline)
//  S  SCQ ring 1p1c               s  SCQ ring 1p2c (consume contention)
struct WorldSpec {
  char id;
  const char* name;
  std::uint32_t procs;
  DporConfig budget;
};

[[nodiscard]] WorldSpec world_spec(char id) {
  switch (id) {
    case 'A': return {'A', "MS 1p1c", 2, {6'000, 200'000}};
    case 'B': return {'B', "MS recycle 1p2c", 3, {8'000, 400'000}};
    case 'C': return {'C', "MS 2p1c", 3, {8'000, 400'000}};
    case 'D': return {'D', "pool hand-off", 2, {4'000, 100'000}};
    case 'E': return {'E', "TATAS lock", 2, {3'000, 50'000}};
    case 'F': return {'F', "Valois 1p1c", 2, {8'000, 200'000}};
    case 'V': return {'V', "Valois 1p2c", 3, {8'000, 400'000}};
    case 'G': return {'G', "SB litmus (weak)", 2, {1'000, 20'000}};
    case 'g': return {'g', "SB litmus (SC)", 2, {1'000, 20'000}};
    case 'H': return {'H', "MP litmus (SC)", 2, {1'000, 20'000}};
    case 'h': return {'h', "MP litmus (weak)", 2, {1'000, 20'000}};
    case 'W': return {'W', "MS 1p1c (weak)", 2, {6'000, 400'000}};
    case 'S': return {'S', "SCQ ring 1p1c", 2, {8'000, 400'000}};
    case 's': return {'s', "SCQ ring 1p2c", 3, {10'000, 600'000}};
    default: throw std::logic_error("unknown world id");
  }
}

[[nodiscard]] std::unique_ptr<WorldBase> make_world(char id,
                                                    const MoTable* mo) {
  switch (id) {
    case 'A': return std::make_unique<MsWorld>(mo, false, 1, 2, std::vector<int>{3});
    case 'B': return std::make_unique<MsWorld>(mo, false, 1, 3, std::vector<int>{1, 2});
    case 'C': return std::make_unique<MsWorld>(mo, false, 2, 1, std::vector<int>{3});
    case 'D': return std::make_unique<PoolWorld>(mo, false);
    case 'E': return std::make_unique<LockWorld>(mo, false);
    case 'F': return std::make_unique<ValoisWorld>(mo, false, std::vector<int>{2});
    case 'V': return std::make_unique<ValoisWorld>(mo, false, std::vector<int>{1, 1});
    case 'G': return std::make_unique<SbWorld>(mo, true);
    case 'g': return std::make_unique<SbWorld>(mo, false);
    case 'H': return std::make_unique<MpWorld>(mo, false);
    case 'h': return std::make_unique<MpWorld>(mo, true);
    case 'W': return std::make_unique<MsWorld>(mo, true, 1, 1, std::vector<int>{2});
    case 'S': return std::make_unique<ScqWorld>(mo, 2, std::vector<int>{3});
    case 's': return std::make_unique<ScqWorld>(mo, 2, std::vector<int>{2, 2});
    default: throw std::logic_error("unknown world id");
  }
}

/// Explore one world under `mo`.  With `early_exit`, stop at the first
/// violation (mutation runs); without, classify every execution (baselines
/// and the showcase runs that must prove a NEGATIVE per channel).
[[nodiscard]] RunOutcome run_world(char id, const MoTable* mo,
                                   bool early_exit) {
  const WorldSpec spec = world_spec(id);
  std::unique_ptr<WorldBase> world;
  RunOutcome out;
  try {
    const DporResult result = explore_dpor(
        spec.budget, spec.procs,
        [&]() -> Engine& {
          world = make_world(id, mo);
          return world->engine();
        },
        /*on_step=*/nullptr,
        [&](Engine& engine) {
          if (engine.races().observed() > 0 && !out.hb_hit) {
            out.hb_hit = true;
            if (!engine.races().reports().empty()) {
              out.detail = engine.races().reports().front().format();
            }
          }
          try {
            world->check_terminal();
          } catch (const std::runtime_error& err) {
            if (!out.terminal_hit) {
              out.terminal_hit = true;
              if (out.detail.empty()) out.detail = err.what();
            }
          }
          if (early_exit && out.caught()) throw CaughtSignal{};
        });
    out.schedules = result.schedules_run;
    out.exhausted = result.budget_exhausted;
  } catch (const CaughtSignal&) {
    // stopped at first violation; schedules_run is unavailable, fine.
  }
  return out;
}

// --- routing -----------------------------------------------------------------

[[nodiscard]] bool site_is(const MoSite& s, std::initializer_list<const char*> names) {
  for (const char* n : names) {
    if (std::strcmp(s.name, n) == 0) return true;
  }
  return false;
}

/// Worlds to try for one mutation, cheapest first; a catch in any world
/// counts, silence must hold across all of them.
[[nodiscard]] std::vector<char> route(const MoSite& s, check::MemOrder m) {
  const bool to_plain = m == check::MemOrder::kPlain;
  if (std::strncmp(s.name, "ms.", 3) == 0) {
    std::vector<char> worlds{'A'};
    if (to_plain &&
        site_is(s, {"ms.E5.tail_load", "ms.E6.next_load", "ms.E7.tail_reload"})) {
      worlds.push_back('C');
    }
    if (to_plain && site_is(s, {"ms.E2.value_write", "ms.E3.next_init",
                                "ms.D2.head_load", "ms.D5.head_reload",
                                "ms.D11.value_read"})) {
      worlds.push_back('B');
    }
    return worlds;
  }
  if (std::strncmp(s.name, "fl.", 3) == 0) return {'D'};
  if (std::strncmp(s.name, "lock.", 5) == 0) return {'E'};
  if (std::strncmp(s.name, "valois.", 7) == 0) {
    // The SafeRead revalidation only re-reads a cell its first load already
    // acquire-synced with, so its atomicity demotion needs a SECOND writer
    // to the same pointer cell: a sibling consumer's head swing (world V).
    if (to_plain && site_is(s, {"valois.ptr_reread"})) return {'F', 'V'};
    return {'F'};
  }
  if (std::strncmp(s.name, "scq.", 4) == 0) {
    // Plain demotions of the probe loads need a SECOND concurrent actor
    // on the same word (a sibling consumer's head FAA / mark CAS) to form
    // the racing pair in schedules the 1p1c world cannot reach.
    if (to_plain) return {'S', 's'};
    return {'S'};
  }
  if (std::strncmp(s.name, "sb.", 3) == 0) return {'G'};
  if (std::strncmp(s.name, "mp.", 3) == 0) return {'H'};
  throw std::logic_error(std::string("unrouted site: ") + s.name);
}

struct Row {
  const MoSite* site = nullptr;
  check::MemOrder mutated = check::MemOrder::kSeqCst;
  bool expected = false;
  bool caught = false;
  char world = '-';
  std::string channel;
  std::string detail;
};

}  // namespace
}  // namespace msq::sim

int main() {
  using namespace msq::sim;
  using msq::check::MemOrder;
  using msq::check::mem_order_name;

  int failures = 0;

  // ---- 1. unmutated baselines must be clean --------------------------------
  std::printf("== baselines (annotated orders, no mutation) ==\n");
  for (const char id :
       {'A', 'B', 'C', 'D', 'E', 'F', 'V', 'G', 'g', 'H', 'h', 'W', 'S', 's'}) {
    const WorldSpec spec = world_spec(id);
    const RunOutcome out = run_world(id, nullptr, /*early_exit=*/false);
    const char* verdict = out.caught() ? "VIOLATION" : "clean";
    std::printf("  %-18s %-9s %8llu schedules%s\n", spec.name, verdict,
                static_cast<unsigned long long>(out.schedules),
                out.exhausted ? "  [budget-bounded coverage]" : "");
    if (out.caught()) {
      std::printf("      %s\n", out.detail.c_str());
      ++failures;
    }
  }

  // ---- 2. the sweep: one mutation at a time --------------------------------
  std::printf("\n== mutation sweep ==\n");
  std::vector<Row> rows;
  for (const MoSite& site : kMoSites) {
    for (const MemOrder m : mo_weakenings(site)) {
      Row row;
      row.site = &site;
      row.mutated = m;
      row.expected = mo_must_catch(site, m);
      for (const char world_id : route(site, m)) {
        MoTable table;
        table.set(site.name, m);
        const RunOutcome out =
            run_world(world_id, &table, /*early_exit=*/true);
        if (out.caught()) {
          row.caught = true;
          row.world = world_id;
          row.channel = out.hb_hit ? "hb-race" : "terminal";
          row.detail = out.detail;
          break;
        }
      }
      rows.push_back(std::move(row));
    }
  }

  int caught_count = 0;
  int silent_count = 0;
  for (const Row& row : rows) {
    const bool ok = row.caught == row.expected;
    if (!ok) ++failures;
    if (row.caught) ++caught_count; else ++silent_count;
    std::printf("  %-22s %-8s-> %-8s expect:%-7s got:%-7s %s\n",
                row.site->name, mem_order_name(row.site->annotated),
                mem_order_name(row.mutated),
                row.expected ? "CAUGHT" : "silent",
                row.caught ? "CAUGHT" : "silent", ok ? "" : "  << MISMATCH");
    if (row.caught) {
      std::printf("      [%c/%s] %s\n", row.world, row.channel.c_str(),
                  row.detail.c_str());
    }
  }
  std::printf("  -- %d caught, %d silent, %zu mutations total\n", caught_count,
              silent_count, rows.size());

  // ---- 3. showcase: a mutation only weak-memory execution catches ----------
  //
  // sb.store_flag -> release: the SC explorer (hb tracker AND value checks)
  // is silent on the full search space; TSO store-buffer exploration
  // produces the forbidden both-zero outcome.
  std::printf("\n== weak-memory-only catch: sb.store_flag -> release ==\n");
  {
    MoTable table;
    table.set("sb.store_flag", MemOrder::kRelease);
    const RunOutcome sc = run_world('g', &table, /*early_exit=*/false);
    const RunOutcome weak = run_world('G', &table, /*early_exit=*/true);
    std::printf("  SC exploration:   %s (%llu schedules, full space)\n",
                sc.caught() ? "VIOLATION (unexpected)" : "silent",
                static_cast<unsigned long long>(sc.schedules));
    std::printf("  TSO exploration:  %s\n",
                weak.caught() ? "CAUGHT" : "silent (unexpected)");
    if (weak.caught()) std::printf("      %s\n", weak.detail.c_str());
    if (sc.caught() || !weak.caught()) {
      std::printf("  << SHOWCASE FAILED\n");
      ++failures;
    }
  }

  // ---- 4. showcase: a mutation only the hb layer catches -------------------
  //
  // lock.unlock_store -> relaxed: mutual exclusion still holds, so no
  // terminal state is ever corrupted -- but the severed release edge is a
  // data race on the critical section's plain counter.
  std::printf("\n== hb-layer-only catch: lock.unlock_store -> relaxed ==\n");
  {
    MoTable table;
    table.set("lock.unlock_store", MemOrder::kRelaxed);
    const RunOutcome out = run_world('E', &table, /*early_exit=*/false);
    std::printf("  terminal checks:  %s across %llu schedules\n",
                out.terminal_hit ? "VIOLATION (unexpected)" : "all clean",
                static_cast<unsigned long long>(out.schedules));
    std::printf("  hb tracker:       %s\n",
                out.hb_hit ? "CAUGHT" : "silent (unexpected)");
    if (out.hb_hit && out.terminal_hit) {
      // detail holds the hb trace only when hb fired first; either way
      // report what we have.
    }
    if (out.hb_hit) std::printf("      %s\n", out.detail.c_str());
    if (!out.hb_hit || out.terminal_hit) {
      std::printf("  << SHOWCASE FAILED\n");
      ++failures;
    }
  }

  std::printf("\n%s (%d failure%s)\n",
              failures == 0 ? "MO MUTATION SWEEP PASSED"
                            : "MO MUTATION SWEEP FAILED",
              failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
