#!/usr/bin/env python3
"""Validate BENCH_*.json files produced by the figure benches (--json).

Schema "msq-bench-v1" (bench/fig_common.cpp:write_json):

    {
      "schema": "msq-bench-v1",
      "title": str, "pairs": int, "max_procs": int,
      "procs_per_processor": int, "seed": int, "backoff_max": num,
      "probes_enabled": bool,
      "series": [
        {"algo": str, "source": "sim"|"real",
         "points": [
           {"procs": int, "net_seconds_per_million_pairs": num,
            "throughput_pairs_per_sec": num, "ops": int,
            "empty_dequeues": int, "enqueue_failures": int,
            # latency benches (fig_stall) also emit, per point:
            #   "p99_ns": int, "p999_ns": int, "injected_stall_ns": int
            "counters": {<name>: {"total": int, "per_op": num}, ...}}]}]
    }

Checks structure, types, finiteness, per-point counter completeness, and
that each series sweeps procs 1..max_procs in increasing order.  Exits
non-zero with a per-file error listing on any violation (CI smoke-bench).

Usage: tools/check_bench_json.py BENCH_fig3.json [more.json ...]
"""

import json
import math
import sys

COUNTER_NAMES = [
    "enqueue", "dequeue", "dequeue_empty", "cas_attempt", "cas_fail",
    "backoff_wait", "lock_acquire", "lock_spin", "pool_get", "pool_refuse",
    "explore_run", "explore_skip", "race_report", "pool_cas_retry",
    "seg_close", "mag_hit", "mag_refill", "mag_flush",
    "shard_hit", "shard_steal", "shard_rehome", "empty_rescan", "wf_help",
]

TOP_KEYS = {
    "schema": str, "title": str, "pairs": int, "max_procs": int,
    "procs_per_processor": int, "seed": int, "backoff_max": (int, float),
    "probes_enabled": bool, "series": list,
}

POINT_KEYS = {
    "procs": int,
    "net_seconds_per_million_pairs": (int, float),
    "throughput_pairs_per_sec": (int, float),
    "ops": int,
    "empty_dequeues": int,
    "enqueue_failures": int,
    "counters": dict,
}

# Emitted only by the latency benches (bench/fig_stall.cpp); when present
# they must be well-formed non-negative integers (nanoseconds).
OPTIONAL_POINT_KEYS = {
    "p99_ns": int,
    "p999_ns": int,
    "injected_stall_ns": int,
}


def finite(x):
    return not (isinstance(x, float) and not math.isfinite(x))


def check_file(path):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    for key, type_ in TOP_KEYS.items():
        if key not in doc:
            err(f"missing top-level key {key!r}")
        elif not isinstance(doc[key], type_) or isinstance(doc[key], bool) != (type_ is bool):
            err(f"top-level {key!r} has type {type(doc[key]).__name__}")
    if errors:
        return errors

    if doc["schema"] != "msq-bench-v1":
        err(f"unknown schema {doc['schema']!r}")
    if not doc["series"]:
        err("empty series list")

    for s_idx, series in enumerate(doc["series"]):
        where = f"series[{s_idx}]"
        if not isinstance(series, dict):
            err(f"{where} is not an object")
            continue
        algo = series.get("algo")
        if not isinstance(algo, str) or not algo:
            err(f"{where} missing algo name")
        else:
            where = f"series[{s_idx}] ({algo}/{series.get('source')})"
        if series.get("source") not in ("sim", "real"):
            err(f"{where} source must be 'sim' or 'real'")
        points = series.get("points")
        if not isinstance(points, list) or not points:
            err(f"{where} has no points")
            continue
        if len(points) != doc["max_procs"]:
            err(f"{where} has {len(points)} points, expected max_procs="
                f"{doc['max_procs']}")

        prev_procs = 0
        for p_idx, point in enumerate(points):
            pwhere = f"{where} point[{p_idx}]"
            if not isinstance(point, dict):
                err(f"{pwhere} is not an object")
                continue
            for key, type_ in POINT_KEYS.items():
                if key not in point:
                    err(f"{pwhere} missing {key!r}")
                elif not isinstance(point[key], type_) or isinstance(point[key], bool):
                    err(f"{pwhere} {key!r} has type {type(point[key]).__name__}")
                elif not finite(point[key]) and key != "counters":
                    err(f"{pwhere} {key!r} is not finite")
            for key, type_ in OPTIONAL_POINT_KEYS.items():
                if key not in point:
                    continue
                value = point[key]
                if not isinstance(value, type_) or isinstance(value, bool):
                    err(f"{pwhere} {key!r} has type {type(value).__name__}")
                elif value < 0:
                    err(f"{pwhere} {key!r} is negative")
            procs = point.get("procs")
            if isinstance(procs, int):
                if procs <= prev_procs:
                    err(f"{pwhere} procs {procs} not increasing")
                prev_procs = procs
            counters = point.get("counters")
            if isinstance(counters, dict):
                for name in COUNTER_NAMES:
                    entry = counters.get(name)
                    if not isinstance(entry, dict):
                        err(f"{pwhere} counters missing {name!r}")
                        continue
                    if not isinstance(entry.get("total"), int):
                        err(f"{pwhere} counters[{name!r}].total not an int")
                    per_op = entry.get("per_op")
                    if not isinstance(per_op, (int, float)) or not finite(per_op):
                        err(f"{pwhere} counters[{name!r}].per_op not finite")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors += check_file(path)
    for e in all_errors:
        print(f"error: {e}", file=sys.stderr)
    if not all_errors:
        print(f"ok: {len(argv) - 1} file(s) conform to msq-bench-v1")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
