#!/usr/bin/env python3
"""Validate BENCH_*.json files produced by the benches (--json).

Three schemas share the counter tables and finiteness rules:

Schema "msq-bench-v1" (bench/fig_common.cpp:write_json and friends):

    {
      "schema": "msq-bench-v1",
      "title": str, "pairs": int, "max_procs": int,
      "procs_per_processor": int, "seed": int, "backoff_max": num,
      "probes_enabled": bool,
      "series": [
        {"algo": str, "source": "sim"|"real",
         "points": [
           {"procs": int, "net_seconds_per_million_pairs": num,
            "throughput_pairs_per_sec": num, "ops": int,
            "empty_dequeues": int, "enqueue_failures": int,
            # latency benches (fig_stall, fig_sharded) also emit, per point:
            #   "p99_ns": int, "p999_ns": int, "injected_stall_ns": int
            "counters": {<name>: {"total": int, "per_op": num}, ...}}]}]
    }

Schema "msq-scenarios-v1" (bench/scenarios.cpp:write_json) -- the open-loop
scenario extension: one object per (preset, queue family) run, carrying the
offered traffic, the shed accounting, coordinated-omission-safe sojourn
percentiles, and the machine-checkable SLO verdict:

    {
      "schema": "msq-scenarios-v1",
      "title": str, "ops": int, "rate_scale": num, "seed": int,
      "probes_enabled": bool,
      "scenarios": [
        {"scenario": str, "algo": str, "producers": int, "consumers": int,
         "capacity": int, "arrival_rate": num, "offered_load": int,
         "enqueued": int, "dequeued": int, "shed": int, "shed_retries": int,
         "shed_rate": num, "elapsed_seconds": num, "max_lag_ns": int,
         "sojourn_p50_ns": int, "sojourn_p99_ns": int,
         "sojourn_p999_ns": int, "sojourn_max_ns": int,
         "slo": {"p99_ns_max": int, "p999_ns_max": int,
                 "shed_rate_max": num, "p99_ok": bool, "p999_ok": bool,
                 "shed_ok": bool},
         "slo_verdict": "pass"|"fail",
         "counters": {<name>: {"total": int, "per_op": num}, ...}}]
    }

Scenario cross-checks beyond shape: shed_rate in [0, 1]; conservation
(enqueued + shed == offered_load, dequeued == enqueued -- the driver drains
before returning); slo_verdict consistent with the three clause booleans.

Schema "msq-memory-v1" (bench/fig_memory.cpp:write_json) -- the cross-queue
memory-footprint family: one object per (queue family, steady|stall) run,
carrying the allocation ceiling, the measured peak, and the bounded-memory
claim:

    {
      "schema": "msq-memory-v1",
      "title": str, "pairs": int, "occupancy": int, "capacity": int,
      "stall_us": int, "seed": int, "probes_enabled": bool,
      "runs": [
        {"algo": str, "scenario": "steady"|"stall", "capacity_nodes": int,
         "node_bytes": int, "peak_nodes": int, "peak_bytes": int,
         "bytes_per_element": num, "ops": int, "enqueue_failures": int,
         "memory_bounded": bool,
         "counters": {<name>: {"total": int, "per_op": num}, ...}}]
    }

Memory cross-checks beyond shape: peak_bytes == peak_nodes * node_bytes;
memory_bounded runs must honour their ceiling (peak_nodes <=
capacity_nodes) -- the SCQ's headline claim, machine-checked.

Checks exit non-zero with a per-file error listing on any violation (CI
smoke-bench).  `--self-test` validates embedded good fixtures of BOTH
schemas and asserts that representative mutations are caught.

Usage: tools/check_bench_json.py [--self-test] [BENCH_fig3.json ...]
"""

import json
import math
import sys
import tempfile

COUNTER_NAMES = [
    "enqueue", "dequeue", "dequeue_empty", "cas_attempt", "cas_fail",
    "backoff_wait", "lock_acquire", "lock_spin", "pool_get", "pool_refuse",
    "explore_run", "explore_skip", "race_report", "pool_cas_retry",
    "seg_close", "mag_hit", "mag_refill", "mag_flush",
    "shard_hit", "shard_steal", "shard_rehome", "empty_rescan", "wf_help",
    "queue_full", "shed_retry", "shed", "scq_catchup", "scq_threshold_reset",
]

TOP_KEYS = {
    "schema": str, "title": str, "pairs": int, "max_procs": int,
    "procs_per_processor": int, "seed": int, "backoff_max": (int, float),
    "probes_enabled": bool, "series": list,
}

POINT_KEYS = {
    "procs": int,
    "net_seconds_per_million_pairs": (int, float),
    "throughput_pairs_per_sec": (int, float),
    "ops": int,
    "empty_dequeues": int,
    "enqueue_failures": int,
    "counters": dict,
}

# Emitted only by the latency benches (fig_stall, fig_sharded); when present
# they must be well-formed non-negative integers (nanoseconds).
OPTIONAL_POINT_KEYS = {
    "p99_ns": int,
    "p999_ns": int,
    "injected_stall_ns": int,
}

SCENARIO_TOP_KEYS = {
    "schema": str, "title": str, "ops": int, "rate_scale": (int, float),
    "seed": int, "probes_enabled": bool, "scenarios": list,
}

SCENARIO_KEYS = {
    "scenario": str, "algo": str, "producers": int, "consumers": int,
    "capacity": int, "arrival_rate": (int, float), "offered_load": int,
    "enqueued": int, "dequeued": int, "shed": int, "shed_retries": int,
    "shed_rate": (int, float), "elapsed_seconds": (int, float),
    "max_lag_ns": int, "sojourn_p50_ns": int, "sojourn_p99_ns": int,
    "sojourn_p999_ns": int, "sojourn_max_ns": int, "slo": dict,
    "slo_verdict": str, "counters": dict,
}

SLO_KEYS = {
    "p99_ns_max": int, "p999_ns_max": int, "shed_rate_max": (int, float),
    "p99_ok": bool, "p999_ok": bool, "shed_ok": bool,
}

MEMORY_TOP_KEYS = {
    "schema": str, "title": str, "pairs": int, "occupancy": int,
    "capacity": int, "stall_us": int, "seed": int, "probes_enabled": bool,
    "runs": list,
}

MEMORY_RUN_KEYS = {
    "algo": str, "scenario": str, "capacity_nodes": int, "node_bytes": int,
    "peak_nodes": int, "peak_bytes": int,
    "bytes_per_element": (int, float), "ops": int, "enqueue_failures": int,
    "memory_bounded": bool, "counters": dict,
}


def finite(x):
    return not (isinstance(x, float) and not math.isfinite(x))


def typed(value, type_):
    """isinstance with the bool/int trap closed both ways."""
    if type_ is bool:
        return isinstance(value, bool)
    return isinstance(value, type_) and not isinstance(value, bool)


def check_keys(obj, spec, where, err):
    for key, type_ in spec.items():
        if key not in obj:
            err(f"{where} missing {key!r}")
        elif not typed(obj[key], type_):
            err(f"{where} {key!r} has type {type(obj[key]).__name__}")
        elif not finite(obj[key]):
            err(f"{where} {key!r} is not finite")


def check_counters(counters, where, err):
    for name in COUNTER_NAMES:
        entry = counters.get(name)
        if not isinstance(entry, dict):
            err(f"{where} counters missing {name!r}")
            continue
        if not typed(entry.get("total"), int):
            err(f"{where} counters[{name!r}].total not an int")
        per_op = entry.get("per_op")
        if not typed(per_op, (int, float)) or not finite(per_op):
            err(f"{where} counters[{name!r}].per_op not finite")


def check_bench_doc(doc, err):
    """The msq-bench-v1 sweep shape (one series per algo, procs 1..max)."""
    ok_top = []
    check_keys(doc, TOP_KEYS, "top-level", lambda m: ok_top.append(m))
    if ok_top:
        for m in ok_top:
            err(m)
        return

    if not doc["series"]:
        err("empty series list")

    for s_idx, series in enumerate(doc["series"]):
        where = f"series[{s_idx}]"
        if not isinstance(series, dict):
            err(f"{where} is not an object")
            continue
        algo = series.get("algo")
        if not isinstance(algo, str) or not algo:
            err(f"{where} missing algo name")
        else:
            where = f"series[{s_idx}] ({algo}/{series.get('source')})"
        if series.get("source") not in ("sim", "real"):
            err(f"{where} source must be 'sim' or 'real'")
        points = series.get("points")
        if not isinstance(points, list) or not points:
            err(f"{where} has no points")
            continue
        if len(points) != doc["max_procs"]:
            err(f"{where} has {len(points)} points, expected max_procs="
                f"{doc['max_procs']}")

        prev_procs = 0
        for p_idx, point in enumerate(points):
            pwhere = f"{where} point[{p_idx}]"
            if not isinstance(point, dict):
                err(f"{pwhere} is not an object")
                continue
            check_keys(point, POINT_KEYS, pwhere, err)
            for key, type_ in OPTIONAL_POINT_KEYS.items():
                if key not in point:
                    continue
                value = point[key]
                if not typed(value, type_):
                    err(f"{pwhere} {key!r} has type {type(value).__name__}")
                elif value < 0:
                    err(f"{pwhere} {key!r} is negative")
            procs = point.get("procs")
            if isinstance(procs, int):
                if procs <= prev_procs:
                    err(f"{pwhere} procs {procs} not increasing")
                prev_procs = procs
            counters = point.get("counters")
            if isinstance(counters, dict):
                check_counters(counters, pwhere, err)


def check_scenarios_doc(doc, err):
    """The msq-scenarios-v1 open-loop shape (one object per run)."""
    ok_top = []
    check_keys(doc, SCENARIO_TOP_KEYS, "top-level", lambda m: ok_top.append(m))
    if ok_top:
        for m in ok_top:
            err(m)
        return

    if not doc["scenarios"]:
        err("empty scenarios list")

    for s_idx, sc in enumerate(doc["scenarios"]):
        where = f"scenarios[{s_idx}]"
        if not isinstance(sc, dict):
            err(f"{where} is not an object")
            continue
        name = sc.get("scenario")
        algo = sc.get("algo")
        if isinstance(name, str) and isinstance(algo, str):
            where = f"scenarios[{s_idx}] ({name}/{algo})"
        check_keys(sc, SCENARIO_KEYS, where, err)

        rate = sc.get("shed_rate")
        if typed(rate, (int, float)) and finite(rate):
            if not 0.0 <= rate <= 1.0:
                err(f"{where} shed_rate {rate} outside [0, 1]")

        verdict = sc.get("slo_verdict")
        if isinstance(verdict, str) and verdict not in ("pass", "fail"):
            err(f"{where} slo_verdict must be 'pass' or 'fail', "
                f"got {verdict!r}")

        slo = sc.get("slo")
        if isinstance(slo, dict):
            check_keys(slo, SLO_KEYS, f"{where} slo", err)
            clauses = [slo.get(k) for k in ("p99_ok", "p999_ok", "shed_ok")]
            if all(isinstance(c, bool) for c in clauses) and \
                    verdict in ("pass", "fail"):
                expect = "pass" if all(clauses) else "fail"
                if verdict != expect:
                    err(f"{where} slo_verdict {verdict!r} inconsistent with "
                        f"clause booleans (expect {expect!r})")

        offered = sc.get("offered_load")
        enq = sc.get("enqueued")
        deq = sc.get("dequeued")
        shed = sc.get("shed")
        if all(typed(v, int) for v in (offered, enq, deq, shed)):
            if enq + shed != offered:
                err(f"{where} conservation: enqueued {enq} + shed {shed} "
                    f"!= offered_load {offered}")
            if deq != enq:
                err(f"{where} drain: dequeued {deq} != enqueued {enq}")

        counters = sc.get("counters")
        if isinstance(counters, dict):
            check_counters(counters, where, err)


def check_memory_doc(doc, err):
    """The msq-memory-v1 footprint shape (one object per family/scenario)."""
    ok_top = []
    check_keys(doc, MEMORY_TOP_KEYS, "top-level", lambda m: ok_top.append(m))
    if ok_top:
        for m in ok_top:
            err(m)
        return

    if not doc["runs"]:
        err("empty runs list")

    for r_idx, run in enumerate(doc["runs"]):
        where = f"runs[{r_idx}]"
        if not isinstance(run, dict):
            err(f"{where} is not an object")
            continue
        algo = run.get("algo")
        scenario = run.get("scenario")
        if isinstance(algo, str) and isinstance(scenario, str):
            where = f"runs[{r_idx}] ({algo}/{scenario})"
        check_keys(run, MEMORY_RUN_KEYS, where, err)

        if isinstance(scenario, str) and scenario not in ("steady", "stall"):
            err(f"{where} scenario must be 'steady' or 'stall', "
                f"got {scenario!r}")

        for key in ("capacity_nodes", "node_bytes", "peak_nodes",
                    "peak_bytes", "bytes_per_element"):
            value = run.get(key)
            if typed(value, (int, float)) and finite(value) and value < 0:
                err(f"{where} {key!r} is negative")

        nodes = run.get("peak_nodes")
        grain = run.get("node_bytes")
        peak = run.get("peak_bytes")
        if all(typed(v, int) for v in (nodes, grain, peak)):
            if peak != nodes * grain:
                err(f"{where} peak_bytes {peak} != peak_nodes {nodes} * "
                    f"node_bytes {grain}")

        ceiling = run.get("capacity_nodes")
        bounded = run.get("memory_bounded")
        if isinstance(bounded, bool) and bounded and \
                all(typed(v, int) for v in (nodes, ceiling)):
            if nodes > ceiling:
                err(f"{where} claims memory_bounded but peak_nodes {nodes} "
                    f"exceeds capacity_nodes {ceiling}")

        counters = run.get("counters")
        if isinstance(counters, dict):
            check_counters(counters, where, err)


def check_file(path):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    schema = doc.get("schema")
    if schema == "msq-bench-v1":
        check_bench_doc(doc, err)
    elif schema == "msq-scenarios-v1":
        check_scenarios_doc(doc, err)
    elif schema == "msq-memory-v1":
        check_memory_doc(doc, err)
    else:
        err(f"unknown schema {schema!r}")
    return errors


# ---------------------------------------------------------------- self-test

def _counters_fixture():
    return {name: {"total": 0, "per_op": 0.0} for name in COUNTER_NAMES}


def _bench_fixture():
    def point(procs):
        return {
            "procs": procs, "net_seconds_per_million_pairs": 1.5,
            "throughput_pairs_per_sec": 2e5, "ops": 4000,
            "empty_dequeues": 3, "enqueue_failures": 0,
            "p99_ns": 1200, "p999_ns": 52000, "injected_stall_ns": 0,
            "counters": _counters_fixture(),
        }
    return {
        "schema": "msq-bench-v1", "title": "fixture", "pairs": 2000,
        "max_procs": 2, "procs_per_processor": 1, "seed": 1,
        "backoff_max": 1024.0, "probes_enabled": True,
        "series": [{"algo": "msq", "source": "real",
                    "points": [point(1), point(2)]}],
    }


def _scenarios_fixture():
    return {
        "schema": "msq-scenarios-v1", "title": "fixture", "ops": 1200,
        "rate_scale": 1.0, "seed": 1, "probes_enabled": True,
        "scenarios": [{
            "scenario": "burst100", "algo": "ring", "producers": 2,
            "consumers": 1, "capacity": 32, "arrival_rate": 16350.0,
            "offered_load": 1200, "enqueued": 1193, "dequeued": 1193,
            "shed": 7, "shed_retries": 14, "shed_rate": 7 / 1200,
            "elapsed_seconds": 0.081, "max_lag_ns": 18033500,
            "sojourn_p50_ns": 4980700, "sojourn_p99_ns": 18382200,
            "sojourn_p999_ns": 18382200, "sojourn_max_ns": 18382200,
            "slo": {"p99_ns_max": 250000000, "p999_ns_max": 600000000,
                    "shed_rate_max": 0.6, "p99_ok": True, "p999_ok": True,
                    "shed_ok": True},
            "slo_verdict": "pass",
            "counters": _counters_fixture(),
        }],
    }


def _memory_fixture():
    def run(algo, scenario, bounded, ceiling, peak):
        return {
            "algo": algo, "scenario": scenario, "capacity_nodes": ceiling,
            "node_bytes": 40, "peak_nodes": peak, "peak_bytes": peak * 40,
            "bytes_per_element": peak * 40 / 12, "ops": 9000,
            "enqueue_failures": 0 if scenario == "steady" else 120,
            "memory_bounded": bounded,
            "counters": _counters_fixture(),
        }
    return {
        "schema": "msq-memory-v1", "title": "fixture", "pairs": 4000,
        "occupancy": 12, "capacity": 2000, "stall_us": 500, "seed": 1,
        "probes_enabled": True,
        "runs": [run("scq", "steady", True, 16, 16),
                 run("scq", "stall", True, 16, 16),
                 run("msq", "stall", False, 2001, 2001)],
    }


def _check_doc(doc):
    """Validate an in-memory doc through the real file path."""
    with tempfile.NamedTemporaryFile("w", suffix=".json") as f:
        json.dump(doc, f)
        f.flush()
        return check_file(f.name)


def self_test():
    import copy

    failures = []

    def expect_clean(name, doc):
        errors = _check_doc(doc)
        if errors:
            failures.append(f"{name}: expected clean, got {errors[:2]}")

    def expect_errors(name, doc, needle):
        errors = _check_doc(doc)
        if not any(needle in e for e in errors):
            failures.append(
                f"{name}: expected an error mentioning {needle!r}, "
                f"got {errors[:2] or 'no errors'}")

    expect_clean("bench/good", _bench_fixture())
    expect_clean("scenarios/good", _scenarios_fixture())
    expect_clean("memory/good", _memory_fixture())

    doc = _bench_fixture()
    del doc["series"][0]["points"][1]["counters"]["shed"]
    expect_errors("bench/missing-new-counter", doc, "shed")

    doc = _bench_fixture()
    doc["series"][0]["points"][1]["procs"] = 1
    expect_errors("bench/non-increasing", doc, "not increasing")

    doc = _bench_fixture()
    doc["series"][0]["points"][0]["p999_ns"] = -1
    expect_errors("bench/negative-p999", doc, "negative")

    doc = _scenarios_fixture()
    del doc["scenarios"][0]["arrival_rate"]
    expect_errors("scenarios/missing-arrival-rate", doc, "arrival_rate")

    doc = _scenarios_fixture()
    doc["scenarios"][0]["offered_load"] = "many"
    expect_errors("scenarios/offered-load-type", doc, "offered_load")

    doc = _scenarios_fixture()
    doc["scenarios"][0]["shed_rate"] = 1.7
    expect_errors("scenarios/shed-rate-range", doc, "outside [0, 1]")

    doc = _scenarios_fixture()
    doc["scenarios"][0]["slo_verdict"] = "maybe"
    expect_errors("scenarios/verdict-enum", doc, "slo_verdict")

    doc = _scenarios_fixture()
    doc["scenarios"][0]["slo"]["shed_ok"] = False
    expect_errors("scenarios/verdict-consistency", doc, "inconsistent")

    doc = _scenarios_fixture()
    doc["scenarios"][0]["enqueued"] = 1100
    expect_errors("scenarios/conservation", doc, "conservation")

    doc = _scenarios_fixture()
    del doc["scenarios"][0]["counters"]["queue_full"]
    expect_errors("scenarios/missing-counter", doc, "queue_full")

    doc = copy.deepcopy(_scenarios_fixture())
    doc["schema"] = "msq-scenarios-v9"
    expect_errors("scenarios/unknown-schema", doc, "unknown schema")

    doc = _memory_fixture()
    del doc["runs"][0]["peak_nodes"]
    expect_errors("memory/missing-peak", doc, "peak_nodes")

    doc = _memory_fixture()
    doc["runs"][1]["scenario"] = "slow"
    expect_errors("memory/scenario-enum", doc, "scenario must be")

    doc = _memory_fixture()
    doc["runs"][2]["peak_bytes"] = 7
    expect_errors("memory/bytes-mismatch", doc, "!= peak_nodes")

    doc = _memory_fixture()
    doc["runs"][1]["peak_nodes"] = 17
    doc["runs"][1]["peak_bytes"] = 17 * 40
    expect_errors("memory/bound-violated", doc, "exceeds capacity_nodes")

    doc = _memory_fixture()
    del doc["runs"][0]["counters"]["scq_threshold_reset"]
    expect_errors("memory/missing-scq-counter", doc, "scq_threshold_reset")

    for f in failures:
        print(f"self-test failure: {f}", file=sys.stderr)
    if not failures:
        print("self-test ok: all three schemas validated, "
              "all mutations caught")
    return 1 if failures else 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors += check_file(path)
    for e in all_errors:
        print(f"error: {e}", file=sys.stderr)
    if not all_errors:
        print(f"ok: {len(argv) - 1} file(s) conform to msq-bench-v1 / "
              "msq-scenarios-v1 / msq-memory-v1")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
