#!/usr/bin/env python3
"""Atomics-discipline lint for the C++ sources (CI-enforced).

Weak-memory bugs are invisible to review unless every ordering decision is
explicit and justified at the site.  Four rules, over .hpp/.cpp files:

1. explicit-order: calls to atomic operations (std::atomic methods and the
   repo wrappers AtomicTagged/AtomicCountedPtr: load, store, exchange,
   fetch_*, compare_exchange_*, compare_and_swap, test_and_set) must pass a
   memory order -- an argument mentioning `memory_order` or a forwarded
   parameter named `*order*`.  Implicit seq_cst is rejected: if seq_cst is
   what you need, say so.  (The wrappers also take no defaults, so the
   compiler co-enforces this; the lint catches raw std::atomic sites.)

2. justified-relaxed: any `memory_order_relaxed` outside src/obs/ must
   carry a `// relaxed: <why>` justification on the same line or one of the
   two lines above.  src/obs/ is exempt wholesale: its one job is relaxed
   counting, and the header comment carries the argument once.

3. aligned-shared-atomics: a `std::atomic<...>`/`std::atomic_flag` member
   or global declaration must be cache-line aligned -- `alignas(...)` on
   the declaration, a `port::CacheAligned` wrapper at the use site, or an
   explicit `// share-ok: <why>` waiver (e.g. node fields that are packed
   by design, or fields padded as a group) on the same line or one of the
   two lines above.

4. no-volatile: `volatile` is banned -- it is not a synchronization
   primitive in C++.  Inline assembly (`asm volatile`) is exempt.

Known limits (by design, this is a grep-class linter, not a parser):
operator sugar on atomics (`++x`, `x = v`) and `atomic_flag::clear()` are
not caught -- the wrappers avoid the former and nothing uses the latter.

Usage:
    tools/atomics_lint.py [--self-test] [PATH ...]   (default PATH: src/)

Exits non-zero iff violations (or self-test failures) are found.
"""

import os
import re
import sys

ATOMIC_METHODS = (
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "compare_and_swap", "test_and_set",
)

CALL_RE = re.compile(r"[.>](" + "|".join(ATOMIC_METHODS) + r")\s*\(")
RELAXED_RE = re.compile(r"memory_order_relaxed|memory_order::relaxed")
ATOMIC_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\s+)?(?:inline\s+)?(?:alignas\s*\([^)]*\)\s*)?"
    r"(?:std::)?atomic(?:_flag\b|\s*<)")
VOLATILE_RE = re.compile(r"\bvolatile\b")
ASM_RE = re.compile(r"\basm\b|__asm__")
ORDER_TOKEN_RE = re.compile(r"memory_order|[A-Za-z_]*order[A-Za-z_]*")


class Violation:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_comment(line):
    """Drop a // comment (naive about string literals -- fine for this code)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def extract_call_args(text, open_paren_idx):
    """Return the balanced-paren argument text starting at `(`, or None if
    the call is unterminated (runs past the scanned window)."""
    depth = 0
    for i in range(open_paren_idx, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren_idx + 1:i]
    return None


def has_order_token(args):
    if "memory_order" in args:
        return True
    # A forwarded parameter: an identifier containing "order" (wrapper
    # definitions forward `order` / `success_order` etc.).
    return any("order" in m.group(0)
               for m in re.finditer(r"[A-Za-z_][A-Za-z0-9_]*", args))


def check_explicit_order(path, lines, out):
    # Scan with a joined window so multi-line calls resolve.
    text = "\n".join(strip_comment(l) for l in lines)
    line_starts = []
    pos = 0
    for l in lines:
        line_starts.append(pos)
        pos += len(strip_comment(l)) + 1

    def line_of(offset):
        lo = 0
        for i, start in enumerate(line_starts):
            if start <= offset:
                lo = i
        return lo + 1

    for m in CALL_RE.finditer(text):
        method = m.group(1)
        args = extract_call_args(text, m.end() - 1)
        if args is None:
            continue  # unterminated within file: not a call we understand
        if method in ("load", "store") and looks_like_container(text, m.start()):
            continue
        if not has_order_token(args):
            out.append(Violation(
                path, line_of(m.start()), "explicit-order",
                f"atomic {method}() without an explicit memory order "
                f"(implicit seq_cst is banned; spell the order out)"))


def looks_like_container(text, call_start):
    """Heuristic escape hatch: `.load(`/`.store(` on objects that are
    clearly not atomics (e.g. an istream).  The repo's own non-atomic value
    slots use put()/get() precisely so this never fires; keep the hook for
    future third-party types."""
    del text, call_start
    return False


def check_relaxed_justified(path, lines, out):
    if f"{os.sep}obs{os.sep}" in path or "/obs/" in path.replace(os.sep, "/"):
        return
    for i, line in enumerate(lines):
        if not RELAXED_RE.search(strip_comment(line)):
            continue
        window = lines[max(0, i - 2):i + 1]
        if not any("// relaxed:" in w for w in window):
            out.append(Violation(
                path, i + 1, "justified-relaxed",
                "memory_order_relaxed without a `// relaxed: <why>` "
                "justification on this or the two preceding lines"))


def check_aligned_atomics(path, lines, out):
    for i, line in enumerate(lines):
        code = strip_comment(line)
        if not ATOMIC_DECL_RE.search(code):
            continue
        # Declarations only: skip using/typedef/template-parameter lines.
        if re.search(r"\busing\b|\btypedef\b|\btemplate\b", code):
            continue
        window_text = "".join(lines[max(0, i - 2):i + 1])
        if "alignas" in code or "CacheAligned" in window_text \
                or "// share-ok:" in window_text:
            continue
        out.append(Violation(
            path, i + 1, "aligned-shared-atomics",
            "atomic member without cache-line alignment: add alignas / "
            "port::CacheAligned, or waive with `// share-ok: <why>`"))


def check_no_volatile(path, lines, out):
    for i, line in enumerate(lines):
        code = strip_comment(line)
        if VOLATILE_RE.search(code) and not ASM_RE.search(code):
            out.append(Violation(
                path, i + 1, "no-volatile",
                "volatile is not a synchronization primitive; use "
                "std::atomic with an explicit order"))


def lint_file(path):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [Violation(path, 0, "io", str(e))]
    out = []
    check_explicit_order(path, lines, out)
    check_relaxed_justified(path, lines, out)
    check_aligned_atomics(path, lines, out)
    check_no_volatile(path, lines, out)
    return out


def iter_sources(paths):
    for p in paths:
        if os.path.isfile(p):
            yield p
            continue
        for root, dirs, files in os.walk(p):
            dirs[:] = [d for d in dirs if d not in ("build", ".git")]
            for name in sorted(files):
                if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                    yield os.path.join(root, name)


# --- self-test ---------------------------------------------------------------

GOOD_SNIPPET = """
#include <atomic>
struct Ok {
  // relaxed: monotone counter, read only after join
  void hit() { n_.fetch_add(1, std::memory_order_relaxed); }
  bool claim(bool e) {
    return b_.compare_exchange_strong(e, true, std::memory_order_acq_rel,
                                      std::memory_order_acquire);
  }
  int peek() const { return n_.load(std::memory_order_acquire); }
  alignas(64) std::atomic<int> n_{0};
  // share-ok: padded as a group with n_ above
  std::atomic<bool> b_{false};
};
static inline void pause() { asm volatile("pause"); }
"""

BAD_SNIPPETS = {
    "explicit-order": """
#include <atomic>
std::atomic<int> g{0};  // share-ok: self-test fixture
int implicit_seq_cst() { return g.load(); }
""",
    "justified-relaxed": """
#include <atomic>
alignas(64) std::atomic<int> g{0};
int bare_relaxed() { return g.load(std::memory_order_relaxed); }
""",
    "aligned-shared-atomics": """
#include <atomic>
struct Shared {
  std::atomic<int> hot{0};
};
int f(Shared& s) { return s.hot.load(std::memory_order_acquire); }
""",
    "no-volatile": """
volatile int spin_flag = 0;
""",
}


def lint_text(name, text):
    out = []
    lines = text.splitlines()
    check_explicit_order(name, lines, out)
    check_relaxed_justified(name, lines, out)
    check_aligned_atomics(name, lines, out)
    check_no_volatile(name, lines, out)
    return out


def self_test():
    failures = []
    good = lint_text("good.hpp", GOOD_SNIPPET)
    if good:
        failures.append("clean snippet flagged: " +
                        "; ".join(str(v) for v in good))
    for rule, snippet in BAD_SNIPPETS.items():
        got = lint_text(f"bad_{rule}.hpp", snippet)
        if not any(v.rule == rule for v in got):
            failures.append(f"seeded {rule} violation NOT detected")
        unexpected = [v for v in got if v.rule != rule]
        if unexpected:
            failures.append(f"bad_{rule} also tripped: " +
                            "; ".join(str(v) for v in unexpected))
    for f in failures:
        print(f"self-test FAIL: {f}", file=sys.stderr)
    if not failures:
        print("self-test ok: clean snippet passes, all 4 seeded "
              "violations detected")
    return 1 if failures else 0


def main(argv):
    args = argv[1:]
    if "--self-test" in args:
        return self_test()
    paths = args or ["src"]
    violations = []
    n_files = 0
    for path in iter_sources(paths):
        n_files += 1
        violations += lint_file(path)
    for v in violations:
        print(f"error: {v}", file=sys.stderr)
    if not violations:
        print(f"ok: {n_files} file(s) pass the atomics lint")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
