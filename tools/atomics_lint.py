#!/usr/bin/env python3
"""Atomics-discipline lint for the C++ sources (CI-enforced).

Weak-memory bugs are invisible to review unless every ordering decision is
explicit and justified at the site.  Four rules, over .hpp/.cpp files:

1. explicit-order: calls to atomic operations (std::atomic methods and the
   repo wrappers AtomicTagged/AtomicCountedPtr: load, store, exchange,
   fetch_*, compare_exchange_*, compare_and_swap, test_and_set) must pass a
   memory order -- an argument mentioning `memory_order` or a forwarded
   parameter named `*order*`.  Implicit seq_cst is rejected: if seq_cst is
   what you need, say so.  (The wrappers also take no defaults, so the
   compiler co-enforces this; the lint catches raw std::atomic sites.)

2. justified-relaxed: any `memory_order_relaxed` outside src/obs/ must
   carry a `// relaxed: <why>` justification on the same line or one of the
   two lines above.  src/obs/ is exempt wholesale: its one job is relaxed
   counting, and the header comment carries the argument once.

2b. relaxed-proof (src/queues/ and src/mem/ only): a `// relaxed: <why>`
   justification must also NAME ITS PROOF ARTIFACT -- `proof:
   mo-sweep:<site>` referencing an MSQ_MO_SITE row in src/sim/mo_table.hpp
   (the memory-order mutation sweep, tools/mo_mutation_sweep.cpp), or
   `proof: test:<path>` referencing a directed test that exists.  Both
   references are validated, so a renamed site or deleted test fails the
   lint, not just the reader.  Continuation comments (`// relaxed: ^`,
   `ditto`, `same ...`, `see ...`) inherit the primary's proof and are
   exempt.

3. aligned-shared-atomics: a `std::atomic<...>`/`std::atomic_flag` member
   or global declaration must be cache-line aligned -- `alignas(...)` on
   the declaration, a `port::CacheAligned` wrapper at the use site, or an
   explicit `// share-ok: <why>` waiver (e.g. node fields that are packed
   by design, or fields padded as a group) on the same line or one of the
   two lines above.

4. no-volatile: `volatile` is banned -- it is not a synchronization
   primitive in C++.  Inline assembly (`asm volatile`) is exempt.

Known limits (by design, this is a grep-class linter, not a parser):
operator sugar on atomics (`++x`, `x = v`) and `atomic_flag::clear()` are
not caught -- the wrappers avoid the former and nothing uses the latter.

Usage:
    tools/atomics_lint.py [--self-test] [PATH ...]   (default PATH: src/)

Exits non-zero iff violations (or self-test failures) are found.
"""

import os
import re
import sys

ATOMIC_METHODS = (
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "compare_and_swap", "test_and_set",
)

CALL_RE = re.compile(r"[.>](" + "|".join(ATOMIC_METHODS) + r")\s*\(")
RELAXED_RE = re.compile(r"memory_order_relaxed|memory_order::relaxed")
ATOMIC_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\s+)?(?:inline\s+)?(?:alignas\s*\([^)]*\)\s*)?"
    r"(?:std::)?atomic(?:_flag\b|\s*<)")
VOLATILE_RE = re.compile(r"\bvolatile\b")
ASM_RE = re.compile(r"\basm\b|__asm__")
ORDER_TOKEN_RE = re.compile(r"memory_order|[A-Za-z_]*order[A-Za-z_]*")


class Violation:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_comment(line):
    """Drop a // comment (naive about string literals -- fine for this code)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def extract_call_args(text, open_paren_idx):
    """Return the balanced-paren argument text starting at `(`, or None if
    the call is unterminated (runs past the scanned window)."""
    depth = 0
    for i in range(open_paren_idx, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren_idx + 1:i]
    return None


def has_order_token(args):
    if "memory_order" in args:
        return True
    # A forwarded parameter: an identifier containing "order" (wrapper
    # definitions forward `order` / `success_order` etc.).
    return any("order" in m.group(0)
               for m in re.finditer(r"[A-Za-z_][A-Za-z0-9_]*", args))


def check_explicit_order(path, lines, out):
    # Scan with a joined window so multi-line calls resolve.
    text = "\n".join(strip_comment(l) for l in lines)
    line_starts = []
    pos = 0
    for l in lines:
        line_starts.append(pos)
        pos += len(strip_comment(l)) + 1

    def line_of(offset):
        lo = 0
        for i, start in enumerate(line_starts):
            if start <= offset:
                lo = i
        return lo + 1

    for m in CALL_RE.finditer(text):
        method = m.group(1)
        args = extract_call_args(text, m.end() - 1)
        if args is None:
            continue  # unterminated within file: not a call we understand
        if method in ("load", "store") and looks_like_container(text, m.start()):
            continue
        if not has_order_token(args):
            out.append(Violation(
                path, line_of(m.start()), "explicit-order",
                f"atomic {method}() without an explicit memory order "
                f"(implicit seq_cst is banned; spell the order out)"))


def looks_like_container(text, call_start):
    """Heuristic escape hatch: `.load(`/`.store(` on objects that are
    clearly not atomics (e.g. an istream).  The repo's own non-atomic value
    slots use put()/get() precisely so this never fires; keep the hook for
    future third-party types."""
    del text, call_start
    return False


def check_relaxed_justified(path, lines, out):
    if f"{os.sep}obs{os.sep}" in path or "/obs/" in path.replace(os.sep, "/"):
        return
    for i, line in enumerate(lines):
        if not RELAXED_RE.search(strip_comment(line)):
            continue
        window = lines[max(0, i - 2):i + 1]
        if not any("// relaxed:" in w for w in window):
            out.append(Violation(
                path, i + 1, "justified-relaxed",
                "memory_order_relaxed without a `// relaxed: <why>` "
                "justification on this or the two preceding lines"))


PROOF_DIRS = ("src/queues/", "src/mem/")
# `^`, `E13 ^`, `ditto`, `same ...`, `see ...`: points at a primary
# justification nearby, which carries the proof.
CONTINUATION_RE = re.compile(r"^\s*(\^|ditto\b|same\b|see\b|[A-Za-z0-9_.]+\s*\^)")
PROOF_RE = re.compile(r"proof:\s*(?:mo-sweep:([A-Za-z0-9_.]+)|test:([^\s)]+))")


def repo_root():
    """The checkout root, located relative to this script (tools/...)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


_MO_SITES_CACHE = []


def mo_sweep_sites():
    """Site names parsed from the MSQ_MO_SITE rows of sim/mo_table.hpp, or
    None when the table is unreadable (validation is then skipped)."""
    if not _MO_SITES_CACHE:
        path = os.path.join(repo_root(), "src", "sim", "mo_table.hpp")
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError:
            _MO_SITES_CACHE.append(None)
            return None
        sites = set(re.findall(r'MSQ_MO_SITE\("([^"]+)"', text))
        _MO_SITES_CACHE.append(sites or None)
    return _MO_SITES_CACHE[0]


def check_relaxed_proof(path, lines, out):
    norm = path.replace(os.sep, "/")
    if not any(d in norm for d in PROOF_DIRS):
        return
    for i, line in enumerate(lines):
        idx = line.find("// relaxed:")
        if idx < 0:
            continue
        justification = line[idx + len("// relaxed:"):]
        if CONTINUATION_RE.match(justification):
            continue  # inherits the primary justification's proof
        # The proof may sit on the justification line or the next two
        # (multi-line comments).
        window = " ".join(lines[i:i + 3])
        m = PROOF_RE.search(window)
        if m is None:
            out.append(Violation(
                path, i + 1, "relaxed-proof",
                "relaxed justification must name its proof artifact: "
                "`proof: mo-sweep:<site>` (an MSQ_MO_SITE row in "
                "src/sim/mo_table.hpp) or `proof: test:<path>`"))
            continue
        site, test = m.group(1), m.group(2)
        if site is not None:
            sites = mo_sweep_sites()
            if sites is not None and site not in sites:
                out.append(Violation(
                    path, i + 1, "relaxed-proof",
                    f"unknown mo-sweep site '{site}': not an MSQ_MO_SITE "
                    f"row in src/sim/mo_table.hpp"))
        else:
            if not os.path.isfile(os.path.join(repo_root(), test)):
                out.append(Violation(
                    path, i + 1, "relaxed-proof",
                    f"proof test '{test}' does not exist"))


def check_aligned_atomics(path, lines, out):
    for i, line in enumerate(lines):
        code = strip_comment(line)
        if not ATOMIC_DECL_RE.search(code):
            continue
        # Declarations only: skip using/typedef/template-parameter lines.
        if re.search(r"\busing\b|\btypedef\b|\btemplate\b", code):
            continue
        window_text = "".join(lines[max(0, i - 2):i + 1])
        if "alignas" in code or "CacheAligned" in window_text \
                or "// share-ok:" in window_text:
            continue
        out.append(Violation(
            path, i + 1, "aligned-shared-atomics",
            "atomic member without cache-line alignment: add alignas / "
            "port::CacheAligned, or waive with `// share-ok: <why>`"))


def check_no_volatile(path, lines, out):
    for i, line in enumerate(lines):
        code = strip_comment(line)
        if VOLATILE_RE.search(code) and not ASM_RE.search(code):
            out.append(Violation(
                path, i + 1, "no-volatile",
                "volatile is not a synchronization primitive; use "
                "std::atomic with an explicit order"))


def lint_file(path):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [Violation(path, 0, "io", str(e))]
    out = []
    check_explicit_order(path, lines, out)
    check_relaxed_justified(path, lines, out)
    check_relaxed_proof(path, lines, out)
    check_aligned_atomics(path, lines, out)
    check_no_volatile(path, lines, out)
    return out


def iter_sources(paths):
    for p in paths:
        if os.path.isfile(p):
            yield p
            continue
        for root, dirs, files in os.walk(p):
            dirs[:] = [d for d in dirs if d not in ("build", ".git")]
            for name in sorted(files):
                if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                    yield os.path.join(root, name)


# --- self-test ---------------------------------------------------------------

GOOD_SNIPPET = """
#include <atomic>
struct Ok {
  // relaxed: monotone counter, read only after join
  void hit() { n_.fetch_add(1, std::memory_order_relaxed); }
  bool claim(bool e) {
    return b_.compare_exchange_strong(e, true, std::memory_order_acq_rel,
                                      std::memory_order_acquire);
  }
  int peek() const { return n_.load(std::memory_order_acquire); }
  alignas(64) std::atomic<int> n_{0};
  // share-ok: padded as a group with n_ above
  std::atomic<bool> b_{false};
};
static inline void pause() { asm volatile("pause"); }
"""

# Fixtures for the relaxed-proof rule must "live" under src/queues/ (the
# rule is scoped); lint_text fakes the path.
GOOD_PROOF_SNIPPET = """
#include <atomic>
struct OkProof {
  // relaxed: E9 failure retries via the acquire reload
  // (proof: mo-sweep:ms.E9.link_cas)
  int a() { return g.load(std::memory_order_relaxed); }
  // relaxed: covered by the directed sweep test (proof: test:tools/atomics_lint.py)
  int b() { return g.load(std::memory_order_relaxed); }
  // relaxed: ^
  int c() { return g.load(std::memory_order_relaxed); }
  alignas(64) std::atomic<int> g{0};
};
"""

BAD_PROOF_SNIPPETS = {
    "missing proof": """
#include <atomic>
struct Bad {
  // relaxed: private until the CAS publishes it
  int f() { return g.load(std::memory_order_relaxed); }
  alignas(64) std::atomic<int> g{0};
};
""",
    "unknown mo-sweep site": """
#include <atomic>
struct Bad {
  // relaxed: justified (proof: mo-sweep:ms.E99.no_such_site)
  int f() { return g.load(std::memory_order_relaxed); }
  alignas(64) std::atomic<int> g{0};
};
""",
    "nonexistent proof test": """
#include <atomic>
struct Bad {
  // relaxed: justified (proof: test:tests/no_such_test.cpp)
  int f() { return g.load(std::memory_order_relaxed); }
  alignas(64) std::atomic<int> g{0};
};
""",
}

BAD_SNIPPETS = {
    "explicit-order": """
#include <atomic>
std::atomic<int> g{0};  // share-ok: self-test fixture
int implicit_seq_cst() { return g.load(); }
""",
    "justified-relaxed": """
#include <atomic>
alignas(64) std::atomic<int> g{0};
int bare_relaxed() { return g.load(std::memory_order_relaxed); }
""",
    "aligned-shared-atomics": """
#include <atomic>
struct Shared {
  std::atomic<int> hot{0};
};
int f(Shared& s) { return s.hot.load(std::memory_order_acquire); }
""",
    "no-volatile": """
volatile int spin_flag = 0;
""",
}


def lint_text(name, text):
    out = []
    lines = text.splitlines()
    check_explicit_order(name, lines, out)
    check_relaxed_justified(name, lines, out)
    check_relaxed_proof(name, lines, out)
    check_aligned_atomics(name, lines, out)
    check_no_volatile(name, lines, out)
    return out


def self_test():
    failures = []
    good = lint_text("good.hpp", GOOD_SNIPPET)
    if good:
        failures.append("clean snippet flagged: " +
                        "; ".join(str(v) for v in good))
    for rule, snippet in BAD_SNIPPETS.items():
        got = lint_text(f"bad_{rule}.hpp", snippet)
        if not any(v.rule == rule for v in got):
            failures.append(f"seeded {rule} violation NOT detected")
        unexpected = [v for v in got if v.rule != rule]
        if unexpected:
            failures.append(f"bad_{rule} also tripped: " +
                            "; ".join(str(v) for v in unexpected))
    good_proof = lint_text("src/queues/good_proof.hpp", GOOD_PROOF_SNIPPET)
    if good_proof:
        failures.append("clean proof snippet flagged: " +
                        "; ".join(str(v) for v in good_proof))
    for name, snippet in BAD_PROOF_SNIPPETS.items():
        got = lint_text("src/queues/bad_proof.hpp", snippet)
        if not any(v.rule == "relaxed-proof" for v in got):
            failures.append(f"seeded relaxed-proof violation ({name}) "
                            f"NOT detected")
        unexpected = [v for v in got if v.rule != "relaxed-proof"]
        if unexpected:
            failures.append(f"bad proof snippet ({name}) also tripped: " +
                            "; ".join(str(v) for v in unexpected))
    for f in failures:
        print(f"self-test FAIL: {f}", file=sys.stderr)
    if not failures:
        print("self-test ok: clean snippets pass, all 4 seeded rule "
              "violations and all 3 seeded proof violations detected")
    return 1 if failures else 0


def main(argv):
    args = argv[1:]
    if "--self-test" in args:
        return self_test()
    paths = args or ["src"]
    violations = []
    n_files = 0
    for path in iter_sources(paths):
        n_files += 1
        violations += lint_file(path)
    for v in violations:
        print(f"error: {v}", file=sys.stderr)
    if not violations:
        print(f"ok: {n_files} file(s) pass the atomics lint")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
