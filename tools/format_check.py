#!/usr/bin/env python3
"""Mechanical formatting gate for C++, CMake, Python, and YAML sources.

The repo ships a .clang-format for editors, but CI containers are not
guaranteed a clang-format binary (and pinning one is its own hazard:
different majors disagree about the same style file, so a version bump
reformats the world).  This script enforces the subset of formatting that
is unambiguous across tools and catches the errors that actually creep
into review diffs:

  * trailing whitespace
  * hard tabs in C++/Python sources (Makefiles and .gitmodules excepted
    by simply not being checked)
  * CRLF line endings
  * missing newline at end of file
  * more than one blank line at end of file

Deliberately NOT enforced: line length, brace placement, indent width --
those are .clang-format's job and a human reviewer's eye; half-enforcing
them mechanically with a weaker tool would fight the real formatter.

Usage:
  python3 tools/format_check.py [paths...]      # check (default: repo dirs)
  python3 tools/format_check.py --fix [paths]   # rewrite files in place
Exit status: 0 clean, 1 violations found (or fixed with --fix).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

CHECKED_SUFFIXES = {
    ".cpp", ".hpp", ".cc", ".h", ".py", ".cmake", ".yml", ".yaml",
    ".md", ".txt",
}
CHECKED_NAMES = {"CMakeLists.txt"}
# Tabs are conventional in some ecosystems; only flag them where the
# repo style is unambiguous (C++ and Python).
TAB_SUFFIXES = {".cpp", ".hpp", ".cc", ".h", ".py"}
DEFAULT_ROOTS = ["src", "tests", "bench", "examples", "tools", "docs"]


def discover(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            files.append(p)
            continue
        for f in sorted(p.rglob("*")):
            if not f.is_file():
                continue
            if f.suffix in CHECKED_SUFFIXES or f.name in CHECKED_NAMES:
                files.append(f)
    return files


def check_file(path: Path, fix: bool) -> list[str]:
    """Returns human-readable violations; rewrites the file when fix=True."""
    try:
        raw = path.read_bytes()
    except OSError as err:
        return [f"{path}: unreadable ({err})"]
    if not raw:
        return []
    problems: list[str] = []
    text = raw.decode("utf-8", errors="replace")

    if "\r" in text:
        problems.append(f"{path}: CRLF line ending")
        text = text.replace("\r\n", "\n").replace("\r", "\n")

    lines = text.split("\n")
    flag_tabs = path.suffix in TAB_SUFFIXES
    for i, line in enumerate(lines, start=1):
        if line != line.rstrip():
            problems.append(f"{path}:{i}: trailing whitespace")
        if flag_tabs and "\t" in line:
            problems.append(f"{path}:{i}: hard tab")
    lines = [ln.rstrip() for ln in lines]

    body = "\n".join(lines)
    fixed = body.rstrip("\n") + "\n"
    if not text.endswith("\n"):
        problems.append(f"{path}: no newline at end of file")
    elif body != fixed:
        problems.append(f"{path}: extra blank line(s) at end of file")

    if fix and problems:
        path.write_bytes(fixed.encode("utf-8"))
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=DEFAULT_ROOTS)
    parser.add_argument("--fix", action="store_true",
                        help="rewrite files in place instead of reporting")
    args = parser.parse_args(argv)

    files = discover(args.paths or DEFAULT_ROOTS)
    if not files:
        print("format_check: no files found", file=sys.stderr)
        return 1

    all_problems: list[str] = []
    for f in files:
        all_problems.extend(check_file(f, args.fix))

    if all_problems:
        verb = "fixed" if args.fix else "found"
        for p in all_problems:
            print(p)
        print(f"format_check: {len(all_problems)} violation(s) {verb} "
              f"in {len(files)} file(s)")
        return 1
    print(f"ok: {len(files)} file(s) pass the format check")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
